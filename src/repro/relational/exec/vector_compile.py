"""The ``"vector"`` execution backend: whole-column kernels over
:class:`~repro.relational.columnar.ColumnarTable`.

Operators evaluate bottom-up into columnar tables: selections compute a
bitmap filter, projections evaluate output expressions as column
kernels, equi-joins match key *codes* with a bloom-bitmap prefilter and
a stable sort/searchsorted probe, and bag semantics carries an explicit
multiplicity column with eager duplicate aggregation at the same
pipeline breakers where the compiled backend deduplicates.

Exactness contract: the backend is differentially fuzzed to be
bit-identical to the interpreter (and therefore to the compiled and
sqlite backends).  Two mechanisms make that hold:

* **Kernels only run where eager, array-typed evaluation provably equals
  the interpreter's lazy per-row evaluation.**  A sub-expression
  vectorizes only when it is raise-free (so eager evaluation of both
  Logic/If branches is indistinguishable from short-circuiting) and when
  NumPy's type promotion is exact for the operand columns (int/float
  mixes demand ``|int| < 2**53``; pure-int arithmetic is bounded away
  from ``int64`` overflow; ``bool`` arithmetic casts to ``int64`` first
  because NumPy's ``bool + bool`` is logical-or, not ``True + True ==
  2``).  Everything else — string arithmetic, ordered cross-type
  comparisons (which must raise :class:`EvaluationError` row-at-a-time),
  symbolic :class:`Var` reads, ``"object"`` columns — falls back to the
  compiled per-row closures of :mod:`.expr_compile`.
* **Row order is preserved through every operator** (probe-side outer,
  build-insertion inner for joins — the compiled pipelines' order), so
  per-row fallbacks hit rows in the same sequence as the compiled
  backend and raise the same first error.

Join keys follow :func:`.plan_compile.split_equijoin_condition` and the
same NULL/NaN build-side exclusion as the compiled hash join; the coded
fast path additionally normalizes ``-0.0`` to ``+0.0`` and routes
``|int| >= 2**53`` keys to a Python dict join (NumPy would compare them
through a lossy ``float64`` cast).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from ..algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    base_relations,
)
from ..columnar import (
    Column,
    ColumnarTable,
    FLOAT_EXACT_INT_BOUND,
    INT64_SAFE_BOUND,
    column_from_values,
    column_values,
    columnar_of_bag,
    columnar_of_relation,
    concat_columns,
)
from ..expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    TRUE,
)
from ..relation import Relation
from ..schema import Schema, SchemaError, check_union_compatible
from .expr_compile import compile_predicate, compile_row
from .plan_compile import _null_free, split_equijoin_condition

try:
    import numpy as np
except ImportError:  # pragma: no cover - kernels disabled, fallbacks run
    np = None

__all__ = [
    "execute_plan_vector",
    "execute_plan_vector_bag",
    "apply_update_vector",
    "apply_delete_vector",
    "bag_update_counts",
    "bag_delete_counts",
    "vectorize_condition",
]

#: Static bound guaranteeing two int64 operands cannot overflow int64.
_INT_ARITH_BOUND = 2 ** 62
#: Cap on materialized cross-product pairs per nested-loop chunk.
_NESTED_CHUNK_PAIRS = 2_000_000

_NUMERIC_TAGS = ("int", "float", "bool")

_NP_CMP: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_NP_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


# -- expression kernels -----------------------------------------------------

def _merge_valid(a: Column, b: Column):
    """Combined validity bitmap of two columns (None = all valid)."""
    if a.valid is None:
        return b.valid
    if b.valid is None:
        return a.valid
    return a.valid & b.valid


def _truthy(col: Column, n: int):
    """``bool(value)`` of every slot (NULL is falsy, like ``bool(None)``)."""
    if col.tag == "bool":
        mask = col.data
    elif col.tag == "int":
        mask = col.data != 0
    elif col.tag == "float":
        # NaN != 0.0 is True, matching bool(nan) == True.
        mask = col.data != 0.0
    else:  # str
        mask = np.asarray(col.data != "", dtype=bool)
    if col.valid is not None:
        mask = mask & col.valid
    return np.asarray(mask, dtype=bool)


def _as_float(col: Column):
    if col.tag == "float":
        return col.data
    return col.data.astype(np.float64)


def _as_int(col: Column):
    if col.tag == "bool":
        return col.data.astype(np.int64)
    return col.data


def _float_exact(col: Column) -> bool:
    """Whether casting this operand to float64 preserves comparisons."""
    return col.tag != "int" or col.int_bound < FLOAT_EXACT_INT_BOUND


def _vec_expr(expr: Expr, table: ColumnarTable) -> Column | None:
    """Evaluate ``expr`` as a whole-column kernel, or ``None`` when only
    the per-row fallback can reproduce interpreter semantics."""
    if np is None:
        return None
    n = table.nrows
    if isinstance(expr, Const):
        value = expr.value
        if value is None:
            # NULL constant: an all-invalid column of arbitrary tag.
            return Column(
                "int", np.zeros(n, dtype=np.int64), np.zeros(n, dtype=bool)
            )
        if isinstance(value, bool):
            return Column("bool", np.full(n, value, dtype=np.bool_))
        if isinstance(value, int):
            if abs(value) >= INT64_SAFE_BOUND:
                return None
            return Column(
                "int", np.full(n, value, dtype=np.int64), None, abs(value)
            )
        if isinstance(value, float):
            if value != value:  # NaN constants keep per-row identity
                return None
            return Column("float", np.full(n, value, dtype=np.float64))
        if isinstance(value, str):
            return Column("str", np.full(n, value, dtype=object))
        return None
    if isinstance(expr, Attr):
        try:
            index = table.schema.index_of(expr.name)
        except SchemaError:
            return None  # unbound: fallback raises EvaluationError per row
        col = table.columns[index]
        if not col.is_array or col.tag == "object":
            return None
        return col
    if isinstance(expr, Arith):
        return _vec_arith(expr, table, n)
    if isinstance(expr, Cmp):
        return _vec_cmp(expr, table, n)
    if isinstance(expr, Logic):
        left = _vec_expr(expr.left, table)
        right = _vec_expr(expr.right, table)
        if left is None or right is None:
            return None
        lm = _truthy(left, n)
        rm = _truthy(right, n)
        return Column("bool", lm & rm if expr.op == "and" else lm | rm)
    if isinstance(expr, Not):
        child = _vec_expr(expr.operand, table)
        if child is None:
            return None
        return Column("bool", ~_truthy(child, n))
    if isinstance(expr, IsNull):
        child = _vec_expr(expr.operand, table)
        if child is None:
            return None
        if child.valid is None:
            return Column("bool", np.zeros(n, dtype=np.bool_))
        return Column("bool", ~child.valid)
    if isinstance(expr, If):
        cond = _vec_expr(expr.cond, table)
        then = _vec_expr(expr.then, table)
        orelse = _vec_expr(expr.orelse, table)
        if cond is None or then is None or orelse is None:
            return None
        if then.tag != orelse.tag:
            # Mixed-type branches would promote through np.where; the
            # fallback preserves per-row result types exactly.
            return None
        mask = _truthy(cond, n)
        data = np.where(mask, then.data, orelse.data)
        if then.valid is None and orelse.valid is None:
            valid = None
        else:
            tv = then.valid if then.valid is not None else np.ones(n, bool)
            ov = orelse.valid if orelse.valid is not None else np.ones(n, bool)
            valid = np.where(mask, tv, ov)
        return Column(
            then.tag, data, valid, max(then.int_bound, orelse.int_bound)
        )
    return None  # Var and anything unknown: per-row semantics required


def _vec_arith(expr: Arith, table: ColumnarTable, n: int) -> Column | None:
    left = _vec_expr(expr.left, table)
    right = _vec_expr(expr.right, table)
    if left is None or right is None:
        return None
    if left.tag not in _NUMERIC_TAGS or right.tag not in _NUMERIC_TAGS:
        return None  # str arithmetic (concat/repeat/TypeError) per row
    valid = _merge_valid(left, right)
    if expr.op == "/":
        if not (_float_exact(left) and _float_exact(right)):
            return None
        num = _as_float(left)
        den = _as_float(right)
        nonzero = den != 0.0  # -0.0 divisors are NULL too, like Python
        valid = nonzero if valid is None else (valid & nonzero)
        with np.errstate(all="ignore"):
            data = num / np.where(nonzero, den, 1.0)
        return Column("float", data, valid)
    if left.tag != "float" and right.tag != "float":
        lb = left.int_bound if left.tag == "int" else 1
        rb = right.int_bound if right.tag == "int" else 1
        bound = lb + rb if expr.op in ("+", "-") else lb * rb
        if bound >= _INT_ARITH_BOUND:
            return None  # Python ints are unbounded; int64 is not
        data = _NP_ARITH[expr.op](_as_int(left), _as_int(right))
        return Column("int", data, valid, bound)
    if not (_float_exact(left) and _float_exact(right)):
        return None
    with np.errstate(all="ignore"):
        data = _NP_ARITH[expr.op](_as_float(left), _as_float(right))
    return Column("float", data, valid)


def _vec_cmp(expr: Cmp, table: ColumnarTable, n: int) -> Column | None:
    left = _vec_expr(expr.left, table)
    right = _vec_expr(expr.right, table)
    if left is None or right is None:
        return None
    if left.tag in _NUMERIC_TAGS and right.tag in _NUMERIC_TAGS:
        if ("float" in (left.tag, right.tag)
                and not (_float_exact(left) and _float_exact(right))):
            return None  # int/float mix beyond 2**53: Python is exact
        result = _NP_CMP[expr.op](left.data, right.data)
    elif left.tag == "str" and right.tag == "str":
        result = np.asarray(_NP_CMP[expr.op](left.data, right.data), bool)
    else:
        # Cross-group: equality is uniformly False / inequality True;
        # ordered comparisons raise EvaluationError row-at-a-time.
        if expr.op == "=":
            result = np.zeros(n, dtype=bool)
        elif expr.op == "!=":
            result = np.ones(n, dtype=bool)
        else:
            return None
    valid = _merge_valid(left, right)
    if valid is not None:
        result = result & valid  # NULL comparisons are False (2VL)
    return Column("bool", np.asarray(result, dtype=bool))


def vectorize_condition(condition: Expr, table: ColumnarTable):
    """A boolean keep-mask for ``condition``, or ``None`` when the
    per-row compiled predicate must run instead."""
    col = _vec_expr(condition, table)
    if col is None:
        return None
    return _truthy(col, table.nrows)


# -- shared row-index helpers ------------------------------------------------

def _take_pairs(
    left: ColumnarTable,
    right: ColumnarTable,
    schema: Schema,
    li: Any,
    ri: Any,
) -> ColumnarTable:
    """Gather the concatenated join rows for index pairs (li[k], ri[k])."""
    columns = [c.take(li) for c in left.columns]
    columns += [c.take(ri) for c in right.columns]
    mult = None
    if left.mult is not None or right.mult is not None:
        lm = left.mult if left.mult is not None else [1] * left.nrows
        rm = right.mult if right.mult is not None else [1] * right.nrows
        li_list = li.tolist() if np is not None and isinstance(
            li, np.ndarray) else list(li)
        ri_list = ri.tolist() if np is not None and isinstance(
            ri, np.ndarray) else list(ri)
        mult = [lm[i] * rm[j] for i, j in zip(li_list, ri_list)]
    return ColumnarTable(schema, columns, len(li), mult)


def _filter_table(table: ColumnarTable, condition: Expr) -> ColumnarTable:
    """σ: bitmap kernel when possible, compiled per-row predicate else."""
    mask = vectorize_condition(condition, table)
    if mask is not None:
        return table.take(np.nonzero(mask)[0])
    predicate = compile_predicate(condition, table.schema)
    keep = [
        i for i, row in enumerate(table.tuples()) if predicate(row)
    ]
    return table.take(keep)


def _project_table(
    table: ColumnarTable, outputs: Sequence[tuple[Expr, str]]
) -> ColumnarTable:
    """π: all output expressions as kernels, or one compiled row closure
    (all-or-nothing keeps error timing identical to the compiled map)."""
    out_schema = Schema(tuple(name for _, name in outputs))
    exprs = tuple(expr for expr, _ in outputs)
    columns: list[Column] = []
    for expr in exprs:
        col = _vec_expr(expr, table)
        if col is None:
            columns = []
            break
        columns.append(col)
    if columns or not exprs:
        return ColumnarTable(out_schema, columns, table.nrows, table.mult)
    row_fn = compile_row(exprs, table.schema)
    rows = [row_fn(row) for row in table.tuples()]
    return ColumnarTable.from_rows(out_schema, rows, table.mult)


# -- coded row identity (dedup / difference / aggregation) -------------------

def _column_codes(col: Column, n: int):
    """Integer codes equating slots exactly when Python ``==`` would, or
    ``None`` when codes cannot be exact (object columns, NaN, huge
    ints).  Code 0 is reserved for NULL (None == None)."""
    if np is None or not col.is_array:
        return None
    if col.tag == "object":
        return None
    if col.tag == "float":
        data = col.data
        if col.valid is None:
            if np.isnan(data).any():
                return None
        elif np.isnan(data[col.valid]).any():
            return None
        data = data + 0.0  # -0.0 == 0.0 must share a code
    else:
        # int codes come straight from the int64 data (no float cast
        # anywhere, so no exactness bound); bool and str likewise.
        data = col.data
    uniq, inverse = np.unique(data, return_inverse=True)
    codes = inverse.astype(np.int64) + 1
    if col.valid is not None:
        codes = np.where(col.valid, codes, 0)
    return codes, len(uniq) + 1


def _row_codes(table: ColumnarTable):
    """One int64 code per row, equal iff the row tuples compare equal;
    ``None`` when any column resists exact coding."""
    if np is None or not table.columns:
        return None
    total = np.zeros(table.nrows, dtype=np.int64)
    radix = 1
    for col in table.columns:
        coded = _column_codes(col, table.nrows)
        if coded is None:
            return None
        codes, base = coded
        if radix * base >= _INT_ARITH_BOUND:
            return None
        total = total * base + codes
        radix *= base
    return total


def _dedup(table: ColumnarTable) -> ColumnarTable:
    """Set-semantics dedup keeping first occurrences in row order."""
    codes = _row_codes(table)
    if codes is not None:
        _, first = np.unique(codes, return_index=True)
        return table.take(np.sort(first))
    seen: set = set()
    add = seen.add
    keep = []
    for i, row in enumerate(table.tuples()):
        if row not in seen:
            add(row)
            keep.append(i)
    return table.take(keep)


def _aggregate(table: ColumnarTable) -> ColumnarTable:
    """Bag-semantics duplicate aggregation: sum multiplicities per
    distinct row, keeping first-occurrence row order."""
    mult = table.mult if table.mult is not None else [1] * table.nrows
    codes = _row_codes(table)
    if codes is not None and all(m < FLOAT_EXACT_INT_BOUND for m in mult):
        _, first, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        sums = np.bincount(
            inverse, weights=np.asarray(mult, dtype=np.float64)
        )
        order = np.argsort(first, kind="stable")
        out = table.take(first[order])
        out.mult = [int(s) for s in sums[order].tolist()]
        return out
    counts: dict[tuple, int] = {}
    firsts: dict[tuple, int] = {}
    for i, (row, count) in enumerate(zip(table.tuples(), mult)):
        if row in counts:
            counts[row] += count
        else:
            counts[row] = count
            firsts[row] = i
    keep = list(firsts.values())
    out = table.take(keep)
    out.mult = list(counts.values())
    return out


def _difference_set(
    left: ColumnarTable, right: ColumnarTable
) -> ColumnarTable:
    """Set difference: coded anti-join when exact, Python set otherwise
    (the Python path is byte-for-byte the compiled breaker)."""
    joint = None
    if left.columns:
        # Joint coding over the concatenation guarantees both sides
        # share codes; recover the per-side slices afterwards.
        joint = _row_codes(
            ColumnarTable(
                left.schema,
                [
                    concat_columns(lc, rc)
                    for lc, rc in zip(left.columns, right.columns)
                ],
                left.nrows + right.nrows,
            )
        )
    if joint is not None:
        lpart = joint[: left.nrows]
        rpart = joint[left.nrows:]
        keep = np.nonzero(~np.isin(lpart, rpart))[0]
        return left.take(keep)
    removed = set(right.tuples())
    keep = [i for i, row in enumerate(left.tuples()) if row not in removed]
    return left.take(keep)


def _monus(left: ColumnarTable, right: ColumnarTable) -> ColumnarTable:
    """Bag difference over aggregated sides (mirrors the compiled
    monus breaker: Counter subtract, floored at zero)."""
    left = _aggregate(left)
    right = _aggregate(right)
    lmult = left.mult if left.mult is not None else [1] * left.nrows
    lrows = left.tuples()  # one materialization: keys stay identical
    counts: dict[tuple, int] = dict(zip(lrows, lmult))
    rmult = right.mult if right.mult is not None else [1] * right.nrows
    for row, count in zip(right.tuples(), rmult):
        if row in counts:
            counts[row] -= count
    keep = []
    mult = []
    for i, row in enumerate(lrows):
        count = counts[row]
        if count > 0:
            keep.append(i)
            mult.append(count)
    out = left.take(keep)
    out.mult = mult
    return out


# -- equi-join matching ------------------------------------------------------

def _key_columns(
    table: ColumnarTable, keys: Sequence[Expr]
) -> list[Column]:
    """Evaluate join-key expressions as columns (kernels when possible,
    one compiled row closure otherwise — same errors, same rows)."""
    columns: list[Column] = []
    for key in keys:
        col = _vec_expr(key, table)
        if col is None:
            columns = []
            break
        columns.append(col)
    if columns:
        return columns
    key_fn = compile_row(tuple(keys), table.schema)
    values = [key_fn(row) for row in table.tuples()]
    return [
        column_from_values([v[i] for v in values])
        for i in range(len(keys))
    ]


def _key_valid_mask(columns: list[Column], n: int):
    """Rows whose key is NULL- and NaN-free (the only matchable rows)."""
    mask = np.ones(n, dtype=bool)
    for col in columns:
        if col.valid is not None:
            mask &= col.valid
        if col.tag == "float":
            mask &= ~np.isnan(col.data)
    return mask


def _dict_match(
    lcols: list[Column], rcols: list[Column], nl: int, nr: int
):
    """Hash-join on Python key tuples — the compiled join verbatim:
    build right (NULL/NaN-free keys only), probe left in row order."""
    rkeys = list(zip(*[column_values(c) for c in rcols]))
    lkeys = list(zip(*[column_values(c) for c in lcols]))
    table: dict[tuple, list[int]] = {}
    setdefault = table.setdefault
    for j in range(nr):
        key = rkeys[j] if rkeys else ()
        if _null_free(key):
            setdefault(key, []).append(j)
    get = table.get
    li: list[int] = []
    ri: list[int] = []
    for i in range(nl):
        matches = get(lkeys[i] if lkeys else ())
        if matches is None:
            continue
        li.extend([i] * len(matches))
        ri.extend(matches)
    return li, ri


def _equi_match(
    left: ColumnarTable,
    right: ColumnarTable,
    left_keys: Sequence[Expr],
    right_keys: Sequence[Expr],
):
    """Row-index pairs (li, ri) of key-equal rows, probe (left) outer.

    Build side first (error order matches the compiled hash join), then
    coded vectorized matching: per key pair a shared integer coding over
    build+probe values, folded into one radix code per row, a one-hash
    bloom bitmap prefilter on the probe codes, then stable
    argsort/searchsorted expansion.  Anything the coding cannot capture
    exactly routes to the dict join."""
    # Build (right) before probe (left): compiled consumes right first.
    rcols = _key_columns(right, right_keys)
    lcols = _key_columns(left, left_keys)
    nl, nr = left.nrows, right.nrows
    if np is None:
        return _dict_match(lcols, rcols, nl, nr)
    for lc, rc in zip(lcols, rcols):
        groups = {
            "num" if t in _NUMERIC_TAGS else t
            for t in (lc.tag, rc.tag)
        }
        if "object" in groups:
            return _dict_match(lcols, rcols, nl, nr)
        if len(groups) > 1:
            return [], []  # cross-group equality is uniformly False
        if not lc.is_array or not rc.is_array:
            return _dict_match(lcols, rcols, nl, nr)
    bsel = np.nonzero(_key_valid_mask(rcols, nr))[0]
    psel = np.nonzero(_key_valid_mask(lcols, nl))[0]
    if len(bsel) == 0 or len(psel) == 0:
        return [], []
    bcode = np.zeros(len(bsel), dtype=np.int64)
    pcode = np.zeros(len(psel), dtype=np.int64)
    radix = 1
    for lc, rc in zip(lcols, rcols):
        if lc.tag == "str":
            bv = rc.data[bsel]
            pv = lc.data[psel]
        elif lc.tag in ("int", "bool") and rc.tag in ("int", "bool"):
            bv = _as_int(rc)[bsel]
            pv = _as_int(lc)[psel]
        else:
            # A float is involved: compare through float64 (+0.0 folds
            # -0.0 and +0.0 together, as Python equality does).
            if not (_float_exact(lc) and _float_exact(rc)):
                return _dict_match(lcols, rcols, nl, nr)
            bv = _as_float(rc)[bsel] + 0.0
            pv = _as_float(lc)[psel] + 0.0
        combined = np.concatenate([bv, pv])
        uniq, inverse = np.unique(combined, return_inverse=True)
        base = len(uniq) + 1
        if radix * base >= _INT_ARITH_BOUND:
            return _dict_match(lcols, rcols, nl, nr)
        inverse = inverse.astype(np.int64)
        bcode = bcode * base + inverse[: len(bsel)]
        pcode = pcode * base + inverse[len(bsel):]
        radix *= base
    # Bloom-bitmap prefilter: one hash (the low code bits) over a
    # power-of-two bitmap ~4x the build side; probe rows whose slot is
    # unset cannot match and skip the sort probe entirely.
    size = 1 << max(8, (4 * len(bsel)).bit_length())
    bloom = np.zeros(size, dtype=bool)
    bloom[bcode & (size - 1)] = True
    maybe = bloom[pcode & (size - 1)]
    psel = psel[maybe]
    pcode = pcode[maybe]
    if len(psel) == 0:
        return [], []
    order = np.argsort(bcode, kind="stable")
    sorted_codes = bcode[order]
    lo = np.searchsorted(sorted_codes, pcode, side="left")
    hi = np.searchsorted(sorted_codes, pcode, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return [], []
    li = np.repeat(psel, counts)
    starts = np.repeat(lo, counts)
    shift = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - shift
    ri = bsel[order[starts + offsets]]
    return li, ri


def _nested_loop_join(
    left: ColumnarTable,
    right: ColumnarTable,
    schema: Schema,
    residual_expr: Expr | None,
) -> ColumnarTable:
    """Joins with no equi-keys: chunked cross-product index arrays with
    the residual applied per chunk (bounds peak memory), or a plain
    Python double loop without NumPy."""
    nl, nr = left.nrows, right.nrows
    if nl == 0 or nr == 0:
        return _take_pairs(left, right, schema, [], [])
    if np is None:
        predicate = (
            compile_predicate(residual_expr, schema)
            if residual_expr is not None else None
        )
        lrows = left.tuples()
        rrows = right.tuples()
        li: list[int] = []
        ri: list[int] = []
        for i, lrow in enumerate(lrows):
            for j, rrow in enumerate(rrows):
                if predicate is None or predicate(lrow + rrow):
                    li.append(i)
                    ri.append(j)
        return _take_pairs(left, right, schema, li, ri)
    chunk = max(1, _NESTED_CHUNK_PAIRS // nr)
    li_parts = []
    ri_parts = []
    for start in range(0, nl, chunk):
        stop = min(start + chunk, nl)
        li = np.repeat(np.arange(start, stop, dtype=np.int64), nr)
        ri = np.tile(np.arange(nr, dtype=np.int64), stop - start)
        if residual_expr is not None:
            part = _take_pairs(left, right, schema, li, ri)
            mask = vectorize_condition(residual_expr, part)
            if mask is None:
                predicate = compile_predicate(residual_expr, schema)
                keep = [
                    k for k, row in enumerate(part.tuples())
                    if predicate(row)
                ]
                li = li[keep]
                ri = ri[keep]
            else:
                li = li[mask]
                ri = ri[mask]
        li_parts.append(li)
        ri_parts.append(ri)
    li = np.concatenate(li_parts) if li_parts else []
    ri = np.concatenate(ri_parts) if ri_parts else []
    return _take_pairs(left, right, schema, li, ri)


# -- operator evaluation -----------------------------------------------------

def _eval(op: Operator, db: Any, bag: bool) -> ColumnarTable:
    if isinstance(op, RelScan):
        relation = db[op.name]
        if bag:
            return columnar_of_bag(relation)
        return columnar_of_relation(relation)
    if isinstance(op, Singleton):
        return ColumnarTable.from_rows(
            op.schema, [op.row], [1] if bag else None
        )
    if isinstance(op, Select):
        return _filter_table(_eval(op.input, db, bag), op.condition)
    if isinstance(op, Project):
        projected = _project_table(_eval(op.input, db, bag), op.outputs)
        return _aggregate(projected) if bag else projected
    if isinstance(op, Union):
        left = _eval(op.left, db, bag)
        right = _eval(op.right, db, bag)
        check_union_compatible(
            left.schema, right.schema, "bag union" if bag else "union"
        )
        columns = [
            concat_columns(lc, rc)
            for lc, rc in zip(left.columns, right.columns)
        ]
        mult = None
        if bag:
            lm = left.mult if left.mult is not None else [1] * left.nrows
            rm = right.mult if right.mult is not None else [1] * right.nrows
            mult = lm + rm
        combined = ColumnarTable(
            left.schema, columns, left.nrows + right.nrows, mult
        )
        return _aggregate(combined) if bag else _dedup(combined)
    if isinstance(op, Difference):
        left = _eval(op.left, db, bag)
        right = _eval(op.right, db, bag)
        check_union_compatible(
            left.schema, right.schema,
            "bag difference" if bag else "difference",
        )
        return _monus(left, right) if bag else _difference_set(left, right)
    if isinstance(op, Join):
        left = _eval(op.left, db, bag)
        right = _eval(op.right, db, bag)
        schema = left.schema.concat(right.schema)
        left_keys, right_keys, residual_expr = split_equijoin_condition(
            op.condition, left.schema, right.schema
        )
        if residual_expr is not None and residual_expr == TRUE:
            residual_expr = None
        if left_keys:
            li, ri = _equi_match(left, right, left_keys, right_keys)
            joined = _take_pairs(left, right, schema, li, ri)
            if residual_expr is not None:
                joined = _filter_table(joined, residual_expr)
        else:
            joined = _nested_loop_join(left, right, schema, residual_expr)
        return _aggregate(joined) if bag else joined
    raise TypeError(f"unknown operator {op!r}")


def _check_base_relations(op: Operator, db: Any) -> None:
    for name in base_relations(op):
        if name not in db:
            raise SchemaError(f"no relation named {name!r}")


def execute_plan_vector(op: Operator, db: Any) -> Relation:
    """Evaluate an operator tree columnar under set semantics."""
    _check_base_relations(op, db)
    return _eval(op, db, bag=False).to_relation()


def execute_plan_vector_bag(op: Operator, db: Any):
    """Evaluate an operator tree columnar under bag semantics."""
    _check_base_relations(op, db)
    return _eval(op, db, bag=True).to_bag()


# -- statement application ---------------------------------------------------

def apply_update_vector(stmt: Any, db: Any) -> Any:
    """Set-semantics UPDATE: condition bitmap + Set kernels over the
    cached columnar view; compiled closures when kernels refuse."""
    relation = db[stmt.relation]
    schema = relation.schema
    table = columnar_of_relation(relation)
    mask = vectorize_condition(stmt.condition, table)
    if mask is not None:
        exprs = tuple(stmt.set_expression_for(a) for a in schema)
        columns = []
        for expr in exprs:
            col = _vec_expr(expr, table)
            if col is None:
                columns = []
                break
            columns.append(col)
        if columns or not exprs:
            updated = ColumnarTable(
                schema, columns, table.nrows
            ).tuples()
            originals = table.tuples()
            flags = mask.tolist()
            rows = frozenset(
                updated[i] if flags[i] else originals[i]
                for i in range(table.nrows)
            )
            return db.with_relation(stmt.relation, Relation(schema, rows))
    from ..statements import compiled_update_row

    update_row = compiled_update_row(stmt, schema)
    rows = frozenset(update_row(t) for t in relation.tuples)
    return db.with_relation(stmt.relation, Relation(schema, rows))


def apply_delete_vector(stmt: Any, db: Any) -> Any:
    """Set-semantics DELETE: keep-mask kernel, else compiled predicate."""
    relation = db[stmt.relation]
    table = columnar_of_relation(relation)
    mask = vectorize_condition(stmt.condition, table)
    if mask is not None:
        kept_table = table.take(np.nonzero(~mask)[0])
        kept = frozenset(kept_table.tuples())
    else:
        from itertools import filterfalse

        predicate = compile_predicate(stmt.condition, relation.schema)
        kept = frozenset(filterfalse(predicate, relation.tuples))
    return db.with_relation(
        stmt.relation, Relation(relation.schema, kept)
    )


def bag_update_counts(stmt: Any, relation: Any) -> dict[tuple, int]:
    """Bag-semantics UPDATE: new multiplicity mapping for the target."""
    schema = relation.schema
    table = columnar_of_bag(relation)
    mask = vectorize_condition(stmt.condition, table)
    if mask is not None:
        exprs = tuple(stmt.set_expression_for(a) for a in schema)
        columns = []
        for expr in exprs:
            col = _vec_expr(expr, table)
            if col is None:
                columns = []
                break
            columns.append(col)
        if columns or not exprs:
            updated = ColumnarTable(schema, columns, table.nrows).tuples()
            originals = table.tuples()
            flags = mask.tolist()
            mult = table.mult if table.mult is not None else [1] * table.nrows
            counts: dict[tuple, int] = {}
            for i in range(table.nrows):
                row = updated[i] if flags[i] else originals[i]
                counts[row] = counts.get(row, 0) + mult[i]
            return counts
    from ..statements import compiled_update_row

    update_row = compiled_update_row(stmt, schema)
    counts = {}
    for row, count in relation.multiplicities.items():
        new_row = update_row(row)
        counts[new_row] = counts.get(new_row, 0) + count
    return counts


def bag_delete_counts(stmt: Any, relation: Any) -> dict[tuple, int]:
    """Bag-semantics DELETE: surviving multiplicity mapping."""
    table = columnar_of_bag(relation)
    mask = vectorize_condition(stmt.condition, table)
    if mask is not None:
        kept = table.take(np.nonzero(~mask)[0])
        mult = kept.mult if kept.mult is not None else [1] * kept.nrows
        return dict(zip(kept.tuples(), mult))
    predicate = compile_predicate(stmt.condition, relation.schema)
    return {
        row: count
        for row, count in relation.multiplicities.items()
        if not predicate(row)
    }
