"""Streaming plan compilation for the bag (multiset) evaluator.

Mirror of :mod:`.plan_compile` for the N[X]-semiring specialization of
:mod:`repro.relational.bag`: pipelines stream ``(row, count)`` pairs,
projection preserves multiplicities, union is additive (a plain chain —
no breaker needed under bags), monus and the final materialization are
the only pipeline breakers, and joins multiply multiplicities with the
same hash-join fast path as the set compiler.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    base_relations,
    output_schema,
)
from ..expressions import TRUE
from ..schema import Schema, SchemaError, check_union_compatible
from .expr_compile import compile_predicate, compile_row
from .plan_compile import (
    _null_free,
    _schemas_key,
    plan_fingerprint,
    split_equijoin_condition,
)

__all__ = [
    "CompiledBagPlan",
    "compile_plan_bag",
    "execute_plan_bag",
    "clear_bag_plan_cache",
    "bag_plan_cache_info",
]

#: One streaming pass of ``(row, count)`` pairs over a bag (sub)plan.
CountedSource = Callable[[Any], Iterable[tuple[tuple, int]]]


class CompiledBagPlan:
    """A compiled operator tree under bag semantics.

    Pickles by recompiling from the operator tree and base schemas, like
    :class:`.plan_compile.CompiledPlan`.
    """

    __slots__ = (
        "schema", "operator", "base_schemas", "_source", "uses_hash_join"
    )

    def __init__(
        self,
        schema: Schema,
        operator: Operator,
        base_schemas: tuple[tuple[str, Schema], ...],
        source: CountedSource,
        uses_hash_join: bool,
    ) -> None:
        self.schema = schema
        self.operator = operator
        self.base_schemas = base_schemas
        self._source = source
        self.uses_hash_join = uses_hash_join

    def __reduce__(self):
        return (compile_plan_bag, (self.operator, dict(self.base_schemas)))

    def counted_rows(self, db: Any) -> Iterable[tuple[tuple, int]]:
        """Stream ``(row, count)`` pairs; a row may appear repeatedly."""
        return self._source(db)

    def execute(self, db: Any):
        from ..bag import BagRelation

        counts: Counter = Counter()
        for row, count in self._source(db):
            counts[row] += count
        return BagRelation(self.schema, counts)


def _compile(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> tuple[Schema, CountedSource, bool]:
    if isinstance(op, RelScan):
        schema = output_schema(op, dict(db_schemas))
        name = op.name

        def scan(db: Any) -> Iterable[tuple[tuple, int]]:
            return iter(db[name].multiplicities.items())

        return schema, scan, False

    if isinstance(op, Singleton):
        row = op.row

        def singleton(db: Any) -> Iterable[tuple[tuple, int]]:
            return iter(((row, 1),))

        return op.schema, singleton, False

    if isinstance(op, Select):
        child_schema, child, child_hash = _compile(op.input, db_schemas)
        predicate = compile_predicate(op.condition, child_schema)

        def select(db: Any) -> Iterator[tuple[tuple, int]]:
            for row, count in child(db):
                if predicate(row):
                    yield row, count

        return child_schema, select, child_hash

    if isinstance(op, Project):
        child_schema, child, child_hash = _compile(op.input, db_schemas)
        out_schema = Schema(tuple(name for _, name in op.outputs))
        row_fn = compile_row(tuple(expr for expr, _ in op.outputs), child_schema)

        def project(db: Any) -> Iterator[tuple[tuple, int]]:
            for row, count in child(db):
                yield row_fn(row), count

        return out_schema, project, child_hash

    if isinstance(op, Union):
        left_schema, left, lh = _compile(op.left, db_schemas)
        right_schema, right, rh = _compile(op.right, db_schemas)
        check_union_compatible(left_schema, right_schema, "bag union")

        def union_all(db: Any) -> Iterator[tuple[tuple, int]]:
            yield from left(db)
            yield from right(db)

        return left_schema, union_all, lh or rh

    if isinstance(op, Difference):
        left_schema, left, lh = _compile(op.left, db_schemas)
        right_schema, right, rh = _compile(op.right, db_schemas)
        check_union_compatible(left_schema, right_schema, "bag difference")

        def monus(db: Any) -> Iterator[tuple[tuple, int]]:
            counts: Counter = Counter()
            for row, count in left(db):
                counts[row] += count
            for row, count in right(db):
                if row in counts:
                    counts[row] -= count
            for row, count in counts.items():
                if count > 0:
                    yield row, count

        return left_schema, monus, lh or rh

    if isinstance(op, Join):
        left_schema, left, lh = _compile(op.left, db_schemas)
        right_schema, right, rh = _compile(op.right, db_schemas)
        schema = left_schema.concat(right_schema)
        left_keys, right_keys, residual_expr = split_equijoin_condition(
            op.condition, left_schema, right_schema
        )
        residual = (
            compile_predicate(residual_expr, schema)
            if residual_expr is not None and residual_expr != TRUE
            else None
        )

        if left_keys:
            left_key = compile_row(left_keys, left_schema)
            right_key = compile_row(right_keys, right_schema)

            def hash_join(db: Any) -> Iterator[tuple[tuple, int]]:
                table: dict[tuple, list[tuple[tuple, int]]] = {}
                setdefault = table.setdefault
                for row, count in right(db):
                    key = right_key(row)
                    if _null_free(key):
                        setdefault(key, []).append((row, count))
                get = table.get
                for lrow, lcount in left(db):
                    matches = get(left_key(lrow))
                    if matches is None:
                        continue
                    for rrow, rcount in matches:
                        combined = lrow + rrow
                        if residual is None or residual(combined):
                            yield combined, lcount * rcount

            return schema, hash_join, True

        def nested_loop_join(db: Any) -> Iterator[tuple[tuple, int]]:
            build = list(right(db))
            for lrow, lcount in left(db):
                for rrow, rcount in build:
                    combined = lrow + rrow
                    if residual is None or residual(combined):
                        yield combined, lcount * rcount

        return schema, nested_loop_join, lh or rh

    raise TypeError(f"unknown operator {op!r}")


@lru_cache(maxsize=1024)
def _compile_bag_cached(
    op: Operator,
    schemas_key: tuple[tuple[str, Schema], ...],
    fingerprint: tuple[str, ...],
) -> CompiledBagPlan:
    schemas = dict(schemas_key)
    schema, source, uses_hash_join = _compile(op, schemas)
    return CompiledBagPlan(schema, op, schemas_key, source, uses_hash_join)


def compile_plan_bag(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> CompiledBagPlan:
    """Compile (with caching) an operator tree for bag evaluation."""
    key = _schemas_key(op, db_schemas)
    try:
        return _compile_bag_cached(op, key, plan_fingerprint(op))
    except TypeError:
        schema, source, uses_hash_join = _compile(op, dict(db_schemas))
        return CompiledBagPlan(schema, op, key, source, uses_hash_join)


def execute_plan_bag(op: Operator, db: Any):
    """Compile-and-run convenience used by ``evaluate_query_bag``."""
    names = base_relations(op)
    schemas: dict[str, Schema] = {}
    for name in names:
        if name not in db:
            raise SchemaError(f"no relation named {name!r}")
        schemas[name] = db.schema_of(name)
    return compile_plan_bag(op, schemas).execute(db)


def clear_bag_plan_cache() -> None:
    _compile_bag_cached.cache_clear()


def bag_plan_cache_info():
    return _compile_bag_cached.cache_info()
