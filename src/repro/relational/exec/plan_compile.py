"""Streaming plan compilation for the set-semantics evaluator.

:func:`compile_plan` lowers an :class:`~repro.relational.algebra.Operator`
tree into a pipeline of composed generator/iterator factories over
positional row tuples:

* scans stream the stored tuple set directly,
* selections run a compiled predicate through the C-level ``filter``,
* projections run a single compiled row function through ``map``,
* **joins take a hash-join fast path** whenever the join condition
  contains conjunctive equalities whose two sides are computable from the
  left and right input schemas respectively; the remaining conjuncts are
  evaluated as a compiled residual predicate over the concatenated row.
  Non-equi conditions fall back to a nested-loop closure (still compiled,
  still streaming),
* set semantics deduplicate only at **pipeline breakers** — union
  (streamed with a membership set) and difference (right side
  materialized) — and at the final result, rather than materializing a
  frozenset per operator the way the interpreter does.

Equality with NULL is false under the two-valued logic, so rows whose
join key contains ``None`` are skipped on both the build and probe sides
— exactly what the interpreter's per-pair ``Cmp`` evaluation produces.

Compiled plans are cached on ``(operator tree, relevant base schemas)``,
so the engine's per-relation query pairs compile once and run many times
across repeated trials (see the plan-cache note in DESIGN.md).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    base_relations,
    output_schema,
    walk_operators,
)
from ..expressions import (
    Cmp,
    Expr,
    TRUE,
    and_,
    attributes_of,
    variables_of,
)
from ..relation import Relation
from ..schema import Schema, SchemaError, check_union_compatible
from .expr_compile import compile_predicate, compile_row, const_fingerprint

__all__ = [
    "CompiledPlan",
    "compile_plan",
    "execute_plan",
    "plan_fingerprint",
    "split_equijoin_condition",
    "clear_plan_cache",
    "plan_cache_info",
]


def plan_fingerprint(op: Operator) -> tuple[str, ...]:
    """Types of every constant embedded in the plan, in walk order.

    Same role as :func:`.expr_compile.const_fingerprint` but for whole
    operator trees: ``Singleton`` rows and condition/projection constants
    compare equal across bool/int/float (``(1,) == (True,)``), so the
    value types must be part of the plan-cache key.
    """
    parts: list[str] = []
    for node in walk_operators(op):
        if isinstance(node, Singleton):
            parts.extend(type(value).__name__ for value in node.row)
        elif isinstance(node, (Select, Join)):
            parts.extend(const_fingerprint(node.condition))
        elif isinstance(node, Project):
            for expr, _ in node.outputs:
                parts.extend(const_fingerprint(expr))
    return tuple(parts)

#: A factory producing one streaming pass over the rows of a (sub)plan.
RowSource = Callable[[Any], Iterable[tuple]]


class CompiledPlan:
    """A compiled operator tree: output schema plus a streaming runner.

    Plans pickle by *recompiling*: the closure pipeline itself cannot
    cross a process boundary, but the operator tree and the base schemas
    it was compiled against can, and compilation is deterministic (and
    cached per process).  The engine's batched process-pool path ships
    raw operator trees (workers compile into their own caches), but any
    structure that happens to hold a compiled plan — results, caches,
    future pool payloads — stays picklable rather than poisoning its
    container.
    """

    __slots__ = (
        "schema", "operator", "base_schemas", "_source", "uses_hash_join"
    )

    def __init__(
        self,
        schema: Schema,
        operator: Operator,
        base_schemas: tuple[tuple[str, Schema], ...],
        source: RowSource,
        uses_hash_join: bool,
    ) -> None:
        self.schema = schema
        self.operator = operator
        self.base_schemas = base_schemas
        self._source = source
        self.uses_hash_join = uses_hash_join

    def __reduce__(self):
        return (compile_plan, (self.operator, dict(self.base_schemas)))

    def rows(self, db: Any) -> Iterable[tuple]:
        """Stream the (possibly duplicate-bearing) output rows."""
        return self._source(db)

    def execute(self, db: Any) -> Relation:
        """Run the pipeline and materialize the set-semantics result."""
        return Relation(self.schema, frozenset(self._source(db)))


def split_equijoin_condition(
    condition: Expr, left: Schema, right: Schema
) -> tuple[tuple[Expr, ...], tuple[Expr, ...], Expr | None]:
    """Split a join condition into hash keys and a residual.

    Returns ``(left_keys, right_keys, residual)`` where the i-th left and
    right key expressions must compare equal for a pair to join.  A
    conjunct qualifies as a key pair when it is an equality whose sides
    read only attributes of one input each (constants qualify for either
    side).  Everything else — including conjuncts with free symbolic
    variables, which must keep the interpreter's raise-on-read timing —
    lands in the residual.  ``residual`` is ``None`` when nothing
    remains.
    """
    from ..expressions import conjuncts_of

    left_attrs = set(left.attributes)
    right_attrs = set(right.attributes)
    left_keys: list[Expr] = []
    right_keys: list[Expr] = []
    residual: list[Expr] = []
    for conjunct in conjuncts_of(condition):
        if (
            isinstance(conjunct, Cmp)
            and conjunct.op == "="
            and not variables_of(conjunct)
        ):
            a_attrs = attributes_of(conjunct.left)
            b_attrs = attributes_of(conjunct.right)
            if a_attrs <= left_attrs and b_attrs <= right_attrs:
                left_keys.append(conjunct.left)
                right_keys.append(conjunct.right)
                continue
            if a_attrs <= right_attrs and b_attrs <= left_attrs:
                left_keys.append(conjunct.right)
                right_keys.append(conjunct.left)
                continue
        residual.append(conjunct)
    if residual:
        return tuple(left_keys), tuple(right_keys), and_(*residual)
    return tuple(left_keys), tuple(right_keys), None


def _null_free(key: tuple) -> bool:
    """Whether a join key can match at all under ``=`` semantics.

    NULL keys never match (2VL), and neither do NaN keys: the
    interpreter evaluates ``nan == nan`` to False, while a dict probe
    would match the same NaN *object* via the identity fast path — so
    both are excluded from the build table.
    """
    for value in key:
        if value is None or value != value:
            return False
    return True


def _compile(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> tuple[Schema, RowSource, bool]:
    """Recursive lowering; returns (schema, row source, uses_hash_join)."""
    if isinstance(op, RelScan):
        schema = output_schema(op, dict(db_schemas))
        name = op.name

        def scan(db: Any) -> Iterable[tuple]:
            return iter(db[name].tuples)

        return schema, scan, False

    if isinstance(op, Singleton):
        row = op.row

        def singleton(db: Any) -> Iterable[tuple]:
            return iter((row,))

        return op.schema, singleton, False

    if isinstance(op, Select):
        child_schema, child, child_hash = _compile(op.input, db_schemas)
        predicate = compile_predicate(op.condition, child_schema)

        def select(db: Any) -> Iterable[tuple]:
            return filter(predicate, child(db))

        return child_schema, select, child_hash

    if isinstance(op, Project):
        child_schema, child, child_hash = _compile(op.input, db_schemas)
        out_schema = Schema(tuple(name for _, name in op.outputs))
        row_fn = compile_row(tuple(expr for expr, _ in op.outputs), child_schema)

        def project(db: Any) -> Iterable[tuple]:
            return map(row_fn, child(db))

        return out_schema, project, child_hash

    if isinstance(op, Union):
        left_schema, left, lh = _compile(op.left, db_schemas)
        right_schema, right, rh = _compile(op.right, db_schemas)
        check_union_compatible(left_schema, right_schema, "union")

        def union(db: Any) -> Iterator[tuple]:
            seen = set()
            add = seen.add
            for row in left(db):
                if row not in seen:
                    add(row)
                    yield row
            for row in right(db):
                if row not in seen:
                    add(row)
                    yield row

        return left_schema, union, lh or rh

    if isinstance(op, Difference):
        left_schema, left, lh = _compile(op.left, db_schemas)
        right_schema, right, rh = _compile(op.right, db_schemas)
        check_union_compatible(left_schema, right_schema, "difference")

        def difference(db: Any) -> Iterator[tuple]:
            removed = set(right(db))
            for row in left(db):
                if row not in removed:
                    yield row

        return left_schema, difference, lh or rh

    if isinstance(op, Join):
        left_schema, left, lh = _compile(op.left, db_schemas)
        right_schema, right, rh = _compile(op.right, db_schemas)
        schema = left_schema.concat(right_schema)
        left_keys, right_keys, residual_expr = split_equijoin_condition(
            op.condition, left_schema, right_schema
        )
        residual = (
            compile_predicate(residual_expr, schema)
            if residual_expr is not None and residual_expr != TRUE
            else None
        )

        if left_keys:
            left_key = compile_row(left_keys, left_schema)
            right_key = compile_row(right_keys, right_schema)

            def hash_join(db: Any) -> Iterator[tuple]:
                table: dict[tuple, list[tuple]] = {}
                setdefault = table.setdefault
                for row in right(db):
                    key = right_key(row)
                    if _null_free(key):
                        setdefault(key, []).append(row)
                get = table.get
                for lrow in left(db):
                    # A probe key containing NULL can never equal a stored
                    # key (those are all NULL-free), so no explicit check.
                    matches = get(left_key(lrow))
                    if matches is None:
                        continue
                    if residual is None:
                        for rrow in matches:
                            yield lrow + rrow
                    else:
                        for rrow in matches:
                            combined = lrow + rrow
                            if residual(combined):
                                yield combined

            return schema, hash_join, True

        def nested_loop_join(db: Any) -> Iterator[tuple]:
            build = list(right(db))
            for lrow in left(db):
                if residual is None:
                    for rrow in build:
                        yield lrow + rrow
                else:
                    for rrow in build:
                        combined = lrow + rrow
                        if residual(combined):
                            yield combined

        return schema, nested_loop_join, lh or rh

    raise TypeError(f"unknown operator {op!r}")


def _schemas_key(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> tuple[tuple[str, Schema], ...]:
    """The part of ``db_schemas`` this plan's compilation depends on."""
    return tuple(
        sorted(
            (name, db_schemas[name])
            for name in base_relations(op)
            if name in db_schemas
        )
    )


@lru_cache(maxsize=1024)
def _compile_plan_cached(
    op: Operator,
    schemas_key: tuple[tuple[str, Schema], ...],
    fingerprint: tuple[str, ...],
) -> CompiledPlan:
    schemas = dict(schemas_key)
    schema, source, uses_hash_join = _compile(op, schemas)
    return CompiledPlan(schema, op, schemas_key, source, uses_hash_join)


def compile_plan(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> CompiledPlan:
    """Compile (with caching) an operator tree against base schemas.

    The cache key is the operator tree plus the schemas of exactly the
    base relations it scans, so plans survive across databases with the
    same layout (the engine's repeated-trial hot path).
    """
    key = _schemas_key(op, db_schemas)
    try:
        return _compile_plan_cached(op, key, plan_fingerprint(op))
    except TypeError:  # unhashable constant inside the tree
        schema, source, uses_hash_join = _compile(op, dict(db_schemas))
        return CompiledPlan(schema, op, key, source, uses_hash_join)


def execute_plan(op: Operator, db: Any) -> Relation:
    """Compile-and-run convenience used by ``evaluate_query``."""
    names = base_relations(op)
    schemas: dict[str, Schema] = {}
    for name in names:
        if name not in db:
            raise SchemaError(f"no relation named {name!r}")
        schemas[name] = db.schema_of(name)
    return compile_plan(op, schemas).execute(db)


def clear_plan_cache() -> None:
    _compile_plan_cached.cache_clear()


def plan_cache_info():
    return _compile_plan_cached.cache_info()
