"""Execution-backend selection.

Four backends evaluate the same operator algebra:

* ``"compiled"`` (the default) — :mod:`repro.relational.exec` lowers
  expression trees to Python closures over positional row tuples and
  operator trees to streaming generator pipelines with a hash-join fast
  path (see DESIGN.md, "Execution backends"),
* ``"interpreted"`` — the original tree-walking evaluator, kept as the
  reference oracle for differential testing,
* ``"sqlite"`` — the middleware backend of the paper's architecture:
  operator trees and statements are translated to SQL and executed
  server-side on an in-memory :mod:`sqlite3` database (see
  :mod:`repro.relational.exec.sql_backend`),
* ``"vector"`` — columnar evaluation: relations become typed NumPy
  columns (pure-Python typed columns without NumPy) and operators run
  as whole-column kernels — bitmap selections, bloom-prefiltered coded
  hash joins, eager bag aggregation (see
  :mod:`repro.relational.exec.vector_compile`).

The default is process-wide state so that code without a config in hand
(statement application inside :meth:`History.execute`, ad-hoc
``evaluate_query`` calls) picks the engine-selected backend.  The engine
scopes its configured backend with :func:`use_backend`, restoring the
previous default on exit, so nested engines with different configs
compose correctly.  The *scope* is thread-local (layered over the
process-wide default): concurrent threads — e.g. the what-if service
answering two requests with different backends — each see their own
``use_backend`` stack and cannot corrupt each other's save/restore,
while :func:`set_default_backend` still changes the process default for
threads with no active scope.

This module is import-light on purpose: :mod:`repro.relational.algebra`
imports it at module load, while the compilers (which import the algebra)
are only pulled in lazily at evaluation time.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "BACKEND_COMPILED",
    "BACKEND_INTERPRETED",
    "BACKEND_SQLITE",
    "BACKEND_VECTOR",
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
    "use_backend",
]

BACKEND_COMPILED = "compiled"
BACKEND_INTERPRETED = "interpreted"
BACKEND_SQLITE = "sqlite"
BACKEND_VECTOR = "vector"
BACKENDS = (
    BACKEND_COMPILED, BACKEND_INTERPRETED, BACKEND_SQLITE, BACKEND_VECTOR
)

_default_backend = BACKEND_COMPILED

#: Per-thread ``use_backend`` override (None = fall through to the
#: process default).  A plain attribute on a ``threading.local``.
_scoped = threading.local()


def _validate(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{BACKENDS}"
        )
    return backend


def get_default_backend() -> str:
    """The backend used when no explicit backend is passed: this
    thread's active ``use_backend`` scope, else the process default."""
    scoped = getattr(_scoped, "backend", None)
    return scoped if scoped is not None else _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    previous = _default_backend
    _default_backend = _validate(backend)
    return previous


def resolve_backend(backend: str | None = None) -> str:
    """Resolve an optional explicit backend against the default."""
    if backend is None:
        return get_default_backend()
    return _validate(backend)


@contextmanager
def use_backend(backend: str | None) -> Iterator[str]:
    """Scope the default backend for this thread; ``None`` keeps the
    current effective default.  Save/restore is per-thread, so
    concurrent scopes with different backends cannot interleave."""
    resolved = resolve_backend(backend)
    previous = getattr(_scoped, "backend", None)
    _scoped.backend = resolved
    try:
        yield resolved
    finally:
        _scoped.backend = previous
