"""Translate expressions, operator trees and statements to SQLite SQL.

This is the query-rewriting half of the ``"sqlite"`` execution backend
(see :mod:`.sql_backend` for connection handling): it turns the algebra
the reenactment compiler produces into *one* SQL string per operator tree
— exactly the query the paper's middleware ships to its DBMS — plus the
parameter list that carries every literal (no string-interpolated values,
so quote-laden strings can never break the generated SQL).

The translation reconciles SQLite's semantics with the interpreter's
Python semantics (DESIGN.md, "Execution backends"):

* **Two-valued NULL logic.**  The interpreter evaluates a comparison with
  a NULL operand to ``False``; SQLite's three-valued logic yields NULL,
  which would flip ``NOT``/``OR`` results.  Every comparison is therefore
  rendered as ``COALESCE((l op r), 0)`` in condition context, so boolean
  connectives only ever see ``0``/``1``.
* **True division.**  Python ``/`` is true division while SQLite divides
  integers integrally, so the left operand is rendered as
  ``CAST(l AS REAL)``.  Division by zero yields NULL on both sides.
* **Bag semantics.**  Bag relations are stored with a hidden multiplicity
  column (:data:`MULT_COLUMN`) threaded through every operator:
  selections and projections carry it along, bag union is ``UNION ALL``,
  joins multiply it, and monus is a grouped ``LEFT JOIN`` on ``IS``
  (NULL-safe) equality with the difference of the summed counts.
* **Booleans** travel as SQLite integers ``1``/``0``.  Python hashes and
  compares ``True == 1``, so the round trip is invisible to relation
  equality and deduplication.

Arithmetic is numeric-domain only, like the paper's grammar: column
value types are unknown at translation time, so string operands in
arithmetic (Python concatenates, SQLite coerces text to 0) and computed
integer overflow past 64 bits (Python is exact, SQLite switches to
REAL) cannot be rejected statically — see the DESIGN.md caveat list.
Literal values with these problems are rejected loudly by
:func:`bind_value`.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from ..expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    EvaluationError,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    Var,
    attributes_of,
    variables_of,
)
from ..schema import Schema, SchemaError, check_union_compatible
from ..statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)

__all__ = [
    "SqlBackendError",
    "MULT_COLUMN",
    "quote_identifier",
    "bind_value",
    "expr_to_sqlite",
    "condition_to_sqlite",
    "query_to_sqlite",
    "query_to_sqlite_bag",
    "statement_to_sqlite",
]


class SqlBackendError(Exception):
    """Raised when a plan/statement cannot be shipped to SQLite."""


#: Hidden multiplicity column used by the bag-semantics translation.
MULT_COLUMN = "_mahif_mult"

#: Internal alias for the summed multiplicity inside the monus rendering.
_SUM_ALIAS = "_mahif_sum"

#: Attribute names the backend claims for itself, rejected uniformly on
#: both the query-translation and statement-application paths.
RESERVED_COLUMNS = frozenset({MULT_COLUMN, _SUM_ALIAS})

_MAX_SQLITE_INT = 2**63 - 1


def quote_identifier(name: str) -> str:
    """Double-quote an identifier (embedded quotes doubled)."""
    return '"' + name.replace('"', '""') + '"'


def bind_value(value: Any) -> Any:
    """Coerce a Python value into a bindable SQLite parameter.

    Booleans become integers (SQLite has no boolean storage class); NaN
    would silently bind as NULL and infinities round-trip fine, so both
    are allowed but NaN is rejected loudly — the interpreter's
    ``nan != nan`` cannot be reproduced server-side.
    """
    if value is None or isinstance(value, (float, str)):
        if isinstance(value, float) and value != value:
            raise SqlBackendError(
                "NaN cannot be shipped to SQLite (it binds as NULL, which "
                "changes comparison semantics)"
            )
        return value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if abs(value) > _MAX_SQLITE_INT:
            raise SqlBackendError(
                f"integer {value} exceeds SQLite's 64-bit range"
            )
        return value
    raise SqlBackendError(
        f"cannot ship value of type {type(value).__name__} to SQLite"
    )


# -- expressions -----------------------------------------------------------

def expr_to_sqlite(expr: Expr, params: list[Any]) -> str:
    """Render ``expr`` in *value* context, appending literals to ``params``.

    Conditions appearing in value position (the interpreter returns a
    Python ``bool`` for them, never NULL) are rendered through the
    condition translation, so they surface as ``0``/``1`` integers.
    """
    if isinstance(expr, Const):
        params.append(bind_value(expr.value))
        return "?"
    if isinstance(expr, (Attr, Var)):
        # The interpreter looks both node kinds up in the same binding,
        # so a Var whose name is a column resolves like an Attr.  Scope
        # is validated by the operator/statement translation; see
        # :func:`_check_scope`.
        return quote_identifier(expr.name)
    if isinstance(expr, Arith):
        left = expr_to_sqlite(expr.left, params)
        right = expr_to_sqlite(expr.right, params)
        if expr.op == "/":
            # Python / is true division; SQLite divides integers
            # integrally.  CAST(NULL AS REAL) stays NULL, x/0 yields NULL
            # on both backends.
            return f"(CAST({left} AS REAL) / {right})"
        return f"({left} {expr.op} {right})"
    if isinstance(expr, If):
        cond = condition_to_sqlite(expr.cond, params)
        then = expr_to_sqlite(expr.then, params)
        orelse = expr_to_sqlite(expr.orelse, params)
        return f"CASE WHEN {cond} THEN {then} ELSE {orelse} END"
    if isinstance(expr, (Cmp, Logic, Not, IsNull)):
        return condition_to_sqlite(expr, params)
    raise SqlBackendError(f"cannot translate expression {expr!r}")


def condition_to_sqlite(expr: Expr, params: list[Any]) -> str:
    """Render ``expr`` in *condition* context: always ``0`` or ``1``.

    Matches the interpreter's two-valued logic: a comparison whose
    operand is NULL is false, so ``NOT``/``AND``/``OR`` never see NULL.
    """
    if isinstance(expr, Cmp):
        op = "<>" if expr.op == "!=" else expr.op
        left = expr_to_sqlite(expr.left, params)
        right = expr_to_sqlite(expr.right, params)
        return f"COALESCE(({left} {op} {right}), 0)"
    if isinstance(expr, Logic):
        left = condition_to_sqlite(expr.left, params)
        right = condition_to_sqlite(expr.right, params)
        return f"({left} {expr.op.upper()} {right})"
    if isinstance(expr, Not):
        return f"(NOT {condition_to_sqlite(expr.operand, params)})"
    if isinstance(expr, IsNull):
        return f"(({expr_to_sqlite(expr.operand, params)}) IS NULL)"
    if isinstance(expr, Const):
        # Known value: take Python's truthiness exactly.
        return "1" if bool(expr.value) else "0"
    if isinstance(expr, If):
        cond = condition_to_sqlite(expr.cond, params)
        then = condition_to_sqlite(expr.then, params)
        orelse = condition_to_sqlite(expr.orelse, params)
        return f"CASE WHEN {cond} THEN {then} ELSE {orelse} END"
    # Generic value in condition position: numeric truthiness.  (String
    # truthiness diverges from Python here — see the DESIGN.md caveats —
    # but the paper's grammar only puts proper conditions in phi.)
    return f"COALESCE((({expr_to_sqlite(expr, params)}) <> 0), 0)"


# -- operator trees --------------------------------------------------------

class _Aliases:
    """Fresh derived-table alias generator for one translation."""

    def __init__(self) -> None:
        self._count = 0

    def next(self) -> str:
        self._count += 1
        return f"_q{self._count}"


def _check_scope(expr: Expr, schema: Schema) -> None:
    """Reject attribute/variable references outside the input schema.

    SQLite's double-quoted-string misfeature would otherwise turn an
    unknown ``"column"`` into the string literal ``'column'`` and return
    silently wrong rows.  The check is *eager* (translate time) where the
    interpreter raises lazily per evaluated row, so the sqlite backend
    rejects an unbound reference even when lazy evaluation would never
    have reached it (empty inputs, dead branches) — this backend's
    error-timing caveat, mirrored after the compiled backend's hash-join
    caveat (see DESIGN.md).
    """
    missing = (
        attributes_of(expr) | variables_of(expr)
    ) - set(schema.attributes)
    if missing:
        raise EvaluationError(f"unbound reference {min(missing)!r}")


def _check_schema(schema: Schema, what: str) -> Schema:
    if schema.arity == 0:
        raise SqlBackendError(f"{what} with zero columns cannot ship to SQLite")
    for attribute in schema.attributes:
        if attribute in RESERVED_COLUMNS:
            raise SqlBackendError(
                f"attribute name {attribute!r} is reserved by the sqlite "
                "backend"
            )
    return schema


def _column_list(schema: Schema, qualifier: str | None = None) -> str:
    prefix = f"{qualifier}." if qualifier else ""
    return ", ".join(prefix + quote_identifier(a) for a in schema.attributes)


def _translate(
    op: Operator,
    db_schemas: Mapping[str, Schema],
    params: list[Any],
    aliases: _Aliases,
    bag: bool,
) -> tuple[str, Schema]:
    """Recursive rendering; returns ``(sql, output schema)``.

    In bag mode every produced SELECT carries a trailing
    :data:`MULT_COLUMN` column.
    """
    mult = quote_identifier(MULT_COLUMN)

    if isinstance(op, RelScan):
        try:
            schema = db_schemas[op.name]
        except KeyError:
            raise SchemaError(f"unknown relation {op.name!r}") from None
        _check_schema(schema, f"relation {op.name!r}")
        cols = _column_list(schema)
        if bag:
            cols += f", {mult}"
        return f"SELECT {cols} FROM {quote_identifier(op.name)}", schema

    if isinstance(op, Singleton):
        _check_schema(op.schema, "singleton")
        parts = []
        for value, attribute in zip(op.row, op.schema.attributes):
            params.append(bind_value(value))
            parts.append(f"? AS {quote_identifier(attribute)}")
        if bag:
            parts.append(f"1 AS {mult}")
        return "SELECT " + ", ".join(parts), op.schema

    if isinstance(op, Select):
        inner, schema = _translate(op.input, db_schemas, params, aliases, bag)
        alias = aliases.next()
        cols = _column_list(schema)
        if bag:
            cols += f", {mult}"
        _check_scope(op.condition, schema)
        cond = condition_to_sqlite(op.condition, params)
        return (
            f"SELECT {cols} FROM ({inner}) AS {alias} WHERE {cond}",
            schema,
        )

    if isinstance(op, Project):
        # Parameters must be appended in the textual order of the final
        # SQL: the projection expressions precede the derived table.
        inner_params: list[Any] = []
        inner, in_schema = _translate(
            op.input, db_schemas, inner_params, aliases, bag
        )
        out_schema = _check_schema(
            Schema(tuple(name for _, name in op.outputs)), "projection"
        )
        alias = aliases.next()
        for expr, _name in op.outputs:
            _check_scope(expr, in_schema)
        parts = [
            f"{expr_to_sqlite(expr, params)} AS {quote_identifier(name)}"
            for expr, name in op.outputs
        ]
        if bag:
            parts.append(mult)
        params.extend(inner_params)
        return (
            f"SELECT {', '.join(parts)} FROM ({inner}) AS {alias}",
            out_schema,
        )

    if isinstance(op, Union):
        left, left_schema = _translate(op.left, db_schemas, params, aliases, bag)
        right, right_schema = _translate(
            op.right, db_schemas, params, aliases, bag
        )
        check_union_compatible(left_schema, right_schema, "union")
        # Wrap each side as a simple SELECT over a derived table: SQLite
        # rejects parenthesized compound members, and flat chaining would
        # mis-associate nested unions/differences.
        cols = _column_list(left_schema) + (f", {mult}" if bag else "")
        keyword = "UNION ALL" if bag else "UNION"
        return (
            f"SELECT {cols} FROM ({left}) AS {aliases.next()} "
            f"{keyword} "
            f"SELECT {cols} FROM ({right}) AS {aliases.next()}",
            left_schema,
        )

    if isinstance(op, Difference):
        left, left_schema = _translate(op.left, db_schemas, params, aliases, bag)
        right, right_schema = _translate(
            op.right, db_schemas, params, aliases, bag
        )
        check_union_compatible(left_schema, right_schema, "difference")
        cols = _column_list(left_schema)
        if not bag:
            return (
                f"SELECT {cols} FROM ({left}) AS {aliases.next()} "
                f"EXCEPT "
                f"SELECT {cols} FROM ({right}) AS {aliases.next()}",
                left_schema,
            )
        # Monus: group both sides, NULL-safe-join the groups, subtract
        # counts floored at zero.  GROUP BY uses ordinals so attribute
        # names can never collide with the sum alias.
        ordinals = ", ".join(
            str(i + 1) for i in range(left_schema.arity)
        )
        total = quote_identifier(_SUM_ALIAS)
        grouped_left = (
            f"SELECT {cols}, SUM({mult}) AS {total} "
            f"FROM ({left}) AS {aliases.next()} GROUP BY {ordinals}"
        )
        grouped_right = (
            f"SELECT {cols}, SUM({mult}) AS {total} "
            f"FROM ({right}) AS {aliases.next()} GROUP BY {ordinals}"
        )
        on = " AND ".join(
            f"_lg.{quote_identifier(a)} IS _rg.{quote_identifier(a)}"
            for a in left_schema.attributes
        )
        remaining = f"_lg.{total} - COALESCE(_rg.{total}, 0)"
        out_cols = _column_list(left_schema, "_lg")
        return (
            f"SELECT {out_cols}, {remaining} AS {mult} "
            f"FROM ({grouped_left}) AS _lg "
            f"LEFT JOIN ({grouped_right}) AS _rg ON {on} "
            f"WHERE {remaining} > 0",
            left_schema,
        )

    if isinstance(op, Join):
        left, left_schema = _translate(op.left, db_schemas, params, aliases, bag)
        right, right_schema = _translate(
            op.right, db_schemas, params, aliases, bag
        )
        schema = left_schema.concat(right_schema)  # raises on name clashes
        left_alias, right_alias = aliases.next(), aliases.next()
        parts = [
            _column_list(left_schema, left_alias),
            _column_list(right_schema, right_alias),
        ]
        if bag:
            parts.append(
                f"{left_alias}.{mult} * {right_alias}.{mult} AS {mult}"
            )
        _check_scope(op.condition, schema)
        cond = condition_to_sqlite(op.condition, params)
        return (
            f"SELECT {', '.join(parts)} "
            f"FROM ({left}) AS {left_alias}, ({right}) AS {right_alias} "
            f"WHERE {cond}",
            schema,
        )

    raise SqlBackendError(f"cannot translate operator {op!r}")


def query_to_sqlite(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> tuple[str, list[Any], Schema]:
    """Set-semantics translation: ``(sql, params, output schema)``."""
    params: list[Any] = []
    sql, schema = _translate(op, db_schemas, params, _Aliases(), bag=False)
    return sql, params, schema


def query_to_sqlite_bag(
    op: Operator, db_schemas: Mapping[str, Schema]
) -> tuple[str, list[Any], Schema]:
    """Bag-semantics translation; the rendered SELECT carries a trailing
    :data:`MULT_COLUMN` column with the row's multiplicity."""
    params: list[Any] = []
    sql, schema = _translate(op, db_schemas, params, _Aliases(), bag=True)
    return sql, params, schema


# -- statements ------------------------------------------------------------

def statement_to_sqlite(
    stmt: Statement,
    db_schemas: Mapping[str, Schema],
    bag: bool,
) -> tuple[str, list[Any]]:
    """Translate an update statement to one SQL statement + parameters.

    ``db_schemas`` must cover the target relation and, for
    ``INSERT ... SELECT``, every scanned source.  The caller is expected
    to have validated schema-level errors (unknown Set attributes, insert
    arity) for parity with the in-process backends.
    """
    target = quote_identifier(stmt.relation)
    params: list[Any] = []

    if isinstance(stmt, UpdateStatement):
        schema = db_schemas[stmt.relation]
        _check_scope(stmt.condition, schema)
        for expr in stmt.set_clauses.values():
            _check_scope(expr, schema)
        sets = ", ".join(
            f"{quote_identifier(attribute)} = {expr_to_sqlite(expr, params)}"
            for attribute, expr in sorted(stmt.set_clauses.items())
        )
        cond = condition_to_sqlite(stmt.condition, params)
        return f"UPDATE {target} SET {sets} WHERE {cond}", params

    if isinstance(stmt, DeleteStatement):
        _check_scope(stmt.condition, db_schemas[stmt.relation])
        cond = condition_to_sqlite(stmt.condition, params)
        return f"DELETE FROM {target} WHERE {cond}", params

    if isinstance(stmt, InsertTuple):
        placeholders = ["?"] * len(stmt.values)
        params.extend(bind_value(v) for v in stmt.values)
        if bag:
            placeholders.append("1")
        return (
            f"INSERT INTO {target} VALUES ({', '.join(placeholders)})",
            params,
        )

    if isinstance(stmt, InsertQuery):
        translate = query_to_sqlite_bag if bag else query_to_sqlite
        sql, query_params, _ = translate(stmt.query, db_schemas)
        target_schema = db_schemas[stmt.relation]
        # Positional relabelling (SQL semantics): name the target columns
        # explicitly so the hidden multiplicity column lines up too.
        cols = _column_list(target_schema)
        if bag:
            cols += f", {quote_identifier(MULT_COLUMN)}"
        return f"INSERT INTO {target} ({cols}) {sql}", query_params

    raise SqlBackendError(f"cannot translate statement {stmt!r}")
