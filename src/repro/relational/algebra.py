"""Relational algebra operators and their set-semantics evaluator.

Reenactment (Definition 3 of the paper) compiles histories into algebra
trees built from generalized projection (projection onto arbitrary
expressions, used for updates), selection (deletes), union (inserts) and —
for delta computation and ``INSERT ... SELECT`` queries — difference and
join.  The evaluator interprets trees directly over
:class:`~repro.relational.database.Database` instances.

Operator trees are immutable; rewrites (data slicing injects selections at
the leaves, Section 10 pulls unions up past projections) return new trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from .database import Database
from .expressions import (
    Expr,
    TRUE,
    and_,
    attributes_of,
    evaluate,
    simplify,
)
from .exec.backend import (
    BACKEND_COMPILED,
    BACKEND_SQLITE,
    BACKEND_VECTOR,
    resolve_backend,
)
from .relation import Relation
from .schema import Schema, SchemaError, check_union_compatible

__all__ = [
    "Operator",
    "RelScan",
    "Singleton",
    "Project",
    "Select",
    "Union",
    "Difference",
    "Join",
    "evaluate_query",
    "evaluate_query_interpreted",
    "output_schema",
    "base_relations",
    "substitute_scans",
    "inject_selection",
    "operator_count",
    "walk_operators",
]


class Operator:
    """Base class for relational algebra operators."""


@dataclass(frozen=True)
class RelScan(Operator):
    """A scan of a named base relation ``R``."""

    name: str


@dataclass(frozen=True)
class Singleton(Operator):
    """A constant singleton relation ``{t}`` (reenacts ``INSERT VALUES``)."""

    schema: Schema
    row: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "row", tuple(self.row))
        if len(self.row) != self.schema.arity:
            raise SchemaError("singleton row arity does not match schema")


@dataclass(frozen=True)
class Project(Operator):
    """Generalized projection ``Π_{e_1 -> A_1, ..., e_n -> A_n}(Q)``."""

    input: Operator
    outputs: tuple[tuple[Expr, str], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "outputs", tuple(self.outputs))
        names = [name for _, name in self.outputs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate output names in projection: {names}")


@dataclass(frozen=True)
class Select(Operator):
    """Selection ``σ_θ(Q)``."""

    input: Operator
    condition: Expr


@dataclass(frozen=True)
class Union(Operator):
    """Set union ``Q1 ∪ Q2`` (arity-compatible; left schema wins)."""

    left: Operator
    right: Operator


@dataclass(frozen=True)
class Difference(Operator):
    """Set difference ``Q1 − Q2``."""

    left: Operator
    right: Operator


@dataclass(frozen=True)
class Join(Operator):
    """Theta join ``Q1 ⋈_θ Q2`` (condition over the concatenated schema)."""

    left: Operator
    right: Operator
    condition: Expr = TRUE


# -- schema inference -------------------------------------------------------

def output_schema(op: Operator, db_schemas: dict[str, Schema]) -> Schema:
    """Infer the output schema of an operator tree.

    ``db_schemas`` maps base relation names to their schemas.
    """
    if isinstance(op, RelScan):
        try:
            return db_schemas[op.name]
        except KeyError:
            raise SchemaError(f"unknown relation {op.name!r}") from None
    if isinstance(op, Singleton):
        return op.schema
    if isinstance(op, Project):
        return Schema(tuple(name for _, name in op.outputs))
    if isinstance(op, Select):
        return output_schema(op.input, db_schemas)
    if isinstance(op, (Union, Difference)):
        left = output_schema(op.left, db_schemas)
        right = output_schema(op.right, db_schemas)
        check_union_compatible(left, right, "union/difference")
        return left
    if isinstance(op, Join):
        return output_schema(op.left, db_schemas).concat(
            output_schema(op.right, db_schemas)
        )
    raise TypeError(f"unknown operator {op!r}")


# -- evaluation -------------------------------------------------------------

def evaluate_query(
    op: Operator, db: Database, backend: str | None = None
) -> Relation:
    """Evaluate an operator tree over a database (set semantics).

    ``backend`` selects the execution backend: ``"compiled"`` (the
    default — see :mod:`repro.relational.exec`) streams the plan through
    closure-compiled operators, ``"interpreted"`` walks the tree per
    tuple, ``"sqlite"`` translates the tree to SQL and executes it
    server-side on an in-memory SQLite database (the paper's middleware
    architecture), and ``None`` defers to the process default
    (:func:`repro.relational.exec.get_default_backend`, usually set by
    the engine's :class:`~repro.core.engine.MahifConfig`).  All backends
    are differentially tested to agree on every operator and expression
    shape; the caveats are error *raising* inside join conditions over
    ill-typed data, where the hash join skips pairs the interpreter
    would have evaluated, and the sqlite backend's typed-domain caveats
    (see DESIGN.md, "Execution backends").
    """
    resolved = resolve_backend(backend)
    if resolved == BACKEND_COMPILED:
        from .exec.plan_compile import execute_plan

        return execute_plan(op, db)
    if resolved == BACKEND_SQLITE:
        from .exec.sql_backend import execute_query_sqlite

        return execute_query_sqlite(op, db)
    if resolved == BACKEND_VECTOR:
        from .exec.vector_compile import execute_plan_vector

        return execute_plan_vector(op, db)
    return evaluate_query_interpreted(op, db)


def evaluate_query_interpreted(op: Operator, db: Database) -> Relation:
    """The tree-walking reference evaluator (the differential oracle)."""
    if isinstance(op, RelScan):
        return db[op.name]
    if isinstance(op, Singleton):
        return Relation(op.schema, frozenset({op.row}))
    if isinstance(op, Project):
        child = evaluate_query_interpreted(op.input, db)
        out_schema = Schema(tuple(name for _, name in op.outputs))
        rows = frozenset(
            tuple(
                evaluate(expr, child.schema.as_dict(t))
                for expr, _ in op.outputs
            )
            for t in child
        )
        return Relation(out_schema, rows)
    if isinstance(op, Select):
        child = evaluate_query_interpreted(op.input, db)
        return child.filter(op.condition)
    if isinstance(op, Union):
        left = evaluate_query_interpreted(op.left, db)
        right = evaluate_query_interpreted(op.right, db)
        check_union_compatible(left.schema, right.schema, "union")
        return Relation(left.schema, left.tuples | right.tuples)
    if isinstance(op, Difference):
        left = evaluate_query_interpreted(op.left, db)
        right = evaluate_query_interpreted(op.right, db)
        check_union_compatible(left.schema, right.schema, "difference")
        return Relation(left.schema, left.tuples - right.tuples)
    if isinstance(op, Join):
        left = evaluate_query_interpreted(op.left, db)
        right = evaluate_query_interpreted(op.right, db)
        schema = left.schema.concat(right.schema)
        rows = set()
        for lt in left:
            left_binding = left.schema.as_dict(lt)
            for rt in right:
                binding = dict(left_binding)
                binding.update(right.schema.as_dict(rt))
                if bool(evaluate(op.condition, binding)):
                    rows.add(lt + rt)
        return Relation(schema, frozenset(rows))
    raise TypeError(f"unknown operator {op!r}")


# -- structural utilities ----------------------------------------------------

def _children(op: Operator) -> tuple[Operator, ...]:
    if isinstance(op, (Project, Select)):
        return (op.input,)
    if isinstance(op, (Union, Difference, Join)):
        return (op.left, op.right)
    return ()


def walk_operators(op: Operator) -> Iterator[Operator]:
    """Yield all operators in the tree (pre-order)."""
    stack = [op]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(_children(node))


def operator_count(op: Operator) -> int:
    """Number of operators in the tree (a proxy for query complexity)."""
    return sum(1 for _ in walk_operators(op))


def base_relations(op: Operator) -> set[str]:
    """Names of all base relations scanned by the tree."""
    return {node.name for node in walk_operators(op) if isinstance(node, RelScan)}


def _rebuild(op: Operator, children: tuple[Operator, ...]) -> Operator:
    if isinstance(op, Project):
        return Project(children[0], op.outputs)
    if isinstance(op, Select):
        return Select(children[0], op.condition)
    if isinstance(op, Union):
        return Union(children[0], children[1])
    if isinstance(op, Difference):
        return Difference(children[0], children[1])
    if isinstance(op, Join):
        return Join(children[0], children[1], op.condition)
    return op


def transform_operators(
    op: Operator, fn: Callable[[Operator], Operator | None]
) -> Operator:
    """Bottom-up rewrite of an operator tree (same contract as
    :func:`repro.relational.expressions.transform`)."""
    children = _children(op)
    if children:
        new_children = tuple(transform_operators(c, fn) for c in children)
        if new_children != children:
            op = _rebuild(op, new_children)
    replacement = fn(op)
    return op if replacement is None else replacement


def substitute_scans(
    op: Operator, mapping: dict[str, Operator]
) -> Operator:
    """Replace each ``RelScan(name)`` with ``mapping[name]`` when present.

    This is how reenactment queries are composed: the reenactment query of
    statement ``u_i`` references the relation produced by ``u_{i-1}``, so we
    substitute the scan with the previous reenactment query (Definition 3).
    """

    def visit(node: Operator) -> Operator | None:
        if isinstance(node, RelScan) and node.name in mapping:
            return mapping[node.name]
        return None

    return transform_operators(op, visit)


def inject_selection(
    op: Operator, conditions: dict[str, Expr]
) -> Operator:
    """Wrap each base-relation scan in a selection.

    Used by data slicing (Section 6): ``conditions`` maps relation names to
    slicing conditions; scans of other relations are left untouched.
    Conditions equal to TRUE are skipped.
    """

    def visit(node: Operator) -> Operator | None:
        if isinstance(node, RelScan):
            cond = conditions.get(node.name)
            if cond is not None:
                cond = simplify(cond)
                if cond != TRUE:
                    return Select(node, cond)
        return None

    return transform_operators(op, visit)
