"""Database instances: named collections of relations.

A database ``D`` is a set of relations ``R_1 ... R_n`` (Section 2).  Like
relations, databases are immutable: replacing one relation produces a new
database sharing every other relation's storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .relation import Relation
from .schema import Schema, SchemaError

__all__ = ["Database"]


@dataclass(frozen=True)
class Database:
    """An immutable database instance mapping relation names to relations."""

    relations: Mapping[str, Relation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", dict(self.relations))

    # -- access ----------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self.relations)

    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    def schema_of(self, name: str) -> Schema:
        return self[name].schema

    # -- functional updates -------------------------------------------------
    def with_relation(self, name: str, relation: Relation) -> "Database":
        """New database with ``name`` bound to ``relation``."""
        updated = dict(self.relations)
        updated[name] = relation
        return Database(updated)

    def without_relation(self, name: str) -> "Database":
        updated = dict(self.relations)
        updated.pop(name, None)
        return Database(updated)

    # -- comparison helpers ----------------------------------------------
    def same_contents(self, other: "Database") -> bool:
        """True when both databases hold exactly the same tuples.

        Relations missing on one side are treated as present-but-empty so
        that e.g. creating an empty relation does not count as a change.
        """
        names = set(self.relations) | set(other.relations)
        for name in names:
            left = self.relations.get(name)
            right = other.relations.get(name)
            left_tuples = left.tuples if left is not None else frozenset()
            right_tuples = right.tuples if right is not None else frozenset()
            if left_tuples != right_tuples:
                return False
        return True

    def total_tuples(self) -> int:
        return sum(len(r) for r in self.relations.values())

    def pretty(self, limit: int = 20) -> str:
        parts = []
        for name in self.relation_names():
            parts.append(f"== {name} ==")
            parts.append(self[name].pretty(limit=limit))
        return "\n".join(parts)
