"""Transactional histories.

A history ``H = u_1, ..., u_n`` is a sequence of statements (Section 2).
This module provides execution (``H(D)``), prefixes ``H_i``, index-subset
histories ``H_I``, and per-relation restriction, plus the snapshot hooks
used by time travel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .database import Database
from .statements import Statement, is_tuple_independent

__all__ = ["History"]


@dataclass(frozen=True)
class History:
    """An immutable sequence of update statements."""

    statements: tuple[Statement, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "statements", tuple(self.statements))

    @classmethod
    def of(cls, *statements: Statement) -> "History":
        return cls(tuple(statements))

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __getitem__(self, index: int) -> Statement:
        """1-based access matching the paper's ``u_i`` numbering."""
        if not 1 <= index <= len(self.statements):
            raise IndexError(
                f"statement index {index} out of range 1..{len(self.statements)}"
            )
        return self.statements[index - 1]

    # -- execution -----------------------------------------------------------
    def execute(self, db: Database) -> Database:
        """``H(D)``: apply all statements in order."""
        for stmt in self.statements:
            db = stmt.apply(db)
        return db

    def execute_with_snapshots(self, db: Database) -> Iterator[Database]:
        """Lazily yield ``D_0, D_1, ..., D_n`` where ``D_i = H_i(D)``.

        ``D_0`` is the input database.  A generator, so consumers that
        only sample versions (checkpointing, time travel) never hold
        O(n) full states at once; wrap in ``list()`` for the eager
        chain.
        """
        yield db
        for stmt in self.statements:
            db = stmt.apply(db)
            yield db

    # -- sub-histories ---------------------------------------------------
    def prefix(self, i: int) -> "History":
        """``H_i = u_1, ..., u_i`` (``H_0`` is the empty history)."""
        if not 0 <= i <= len(self.statements):
            raise IndexError(f"prefix length {i} out of range")
        return History(self.statements[:i])

    def slice_range(self, i: int, j: int) -> "History":
        """``H_{i,j} = u_i, ..., u_j`` (inclusive, 1-based)."""
        if not (1 <= i <= j <= len(self.statements)):
            raise IndexError(f"range {i}..{j} out of bounds")
        return History(self.statements[i - 1 : j])

    def subset(self, indices: Iterable[int]) -> "History":
        """``H_I``: statements at the (1-based) positions in ``I``.

        Positions are applied in ascending order regardless of the order
        given.
        """
        wanted = sorted(set(indices))
        for i in wanted:
            if not 1 <= i <= len(self.statements):
                raise IndexError(f"index {i} out of range")
        return History(tuple(self.statements[i - 1] for i in wanted))

    def replace(self, position: int, stmt: Statement) -> "History":
        """History with the statement at ``position`` (1-based) replaced."""
        if not 1 <= position <= len(self.statements):
            raise IndexError(f"position {position} out of range")
        updated = list(self.statements)
        updated[position - 1] = stmt
        return History(tuple(updated))

    def insert_at(self, position: int, stmt: Statement) -> "History":
        """History with ``stmt`` inserted *at* position (1-based)."""
        if not 1 <= position <= len(self.statements) + 1:
            raise IndexError(f"position {position} out of range")
        updated = list(self.statements)
        updated.insert(position - 1, stmt)
        return History(tuple(updated))

    def delete_at(self, position: int) -> "History":
        """History with the statement at ``position`` removed."""
        if not 1 <= position <= len(self.statements):
            raise IndexError(f"position {position} out of range")
        updated = list(self.statements)
        del updated[position - 1]
        return History(tuple(updated))

    # -- properties ------------------------------------------------------
    def accessed_relations(self) -> set[str]:
        """All relations read or written by the history."""
        names: set[str] = set()
        for stmt in self.statements:
            names |= stmt.accessed_relations()
        return names

    def target_relations(self) -> set[str]:
        """Relations written by the history."""
        return {stmt.relation for stmt in self.statements}

    def restrict_to_relation(self, relation: str) -> "list[tuple[int, Statement]]":
        """(position, statement) pairs of statements targeting ``relation``."""
        return [
            (i, stmt)
            for i, stmt in enumerate(self.statements, start=1)
            if stmt.relation == relation
        ]

    def is_tuple_independent(self) -> bool:
        """True when every statement is tuple independent (Definition 1)."""
        return all(is_tuple_independent(s) for s in self.statements)

    def positions(self) -> range:
        """1-based positions of the history's statements."""
        return range(1, len(self.statements) + 1)
