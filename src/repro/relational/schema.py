"""Relation schemas.

A schema is an ordered list of attribute names with optional type tags.
Set-semantics relations (Section 2 of the paper) are sets of tuples over
the universal domain; the type tags are advisory and used by the workload
generators and the MILP compiler (to pick categorical encodings for
strings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["Schema", "SchemaError", "check_union_compatible"]


class SchemaError(Exception):
    """Raised on schema violations (arity/name mismatches)."""


@dataclass(frozen=True)
class Schema:
    """An ordered relation schema ``Sch(R) = (A_1, ..., A_n)``."""

    attributes: tuple[str, ...]
    types: tuple[str, ...] = field(default=())
    #: Cached attribute->position map, built in ``__post_init__``.
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in {attrs}")
        if self.types:
            types = tuple(self.types)
            if len(types) != len(attrs):
                raise SchemaError("types must match attributes in length")
            object.__setattr__(self, "types", types)
        else:
            object.__setattr__(self, "types", ("any",) * len(attrs))
        # Cached position map: attribute lookups and tuple<->dict
        # conversions are per-row hot paths for the interpreter backend
        # (22 call sites), so they must not rescan the attribute tuple.
        object.__setattr__(
            self, "_index", {a: i for i, a in enumerate(attrs)}
        )

    @classmethod
    def of(cls, *attributes: str, types: Iterable[str] | None = None) -> "Schema":
        """Build a schema from attribute names."""
        return cls(tuple(attributes), tuple(types) if types else ())

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises :class:`SchemaError`."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"attribute {name!r} not in schema {self.attributes}"
            ) from None

    def type_of(self, name: str) -> str:
        return self.types[self.index_of(name)]

    def as_dict(self, values: tuple[Any, ...]) -> dict[str, Any]:
        """Zip a raw tuple into an attribute->value mapping."""
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple arity {len(values)} != schema arity {self.arity}"
            )
        return dict(zip(self.attributes, values))

    def from_dict(self, binding: dict[str, Any]) -> tuple[Any, ...]:
        """Project an attribute->value mapping back into tuple order."""
        try:
            return tuple(binding[a] for a in self.attributes)
        except KeyError as exc:
            raise SchemaError(f"missing attribute {exc} in binding") from None

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed via ``mapping`` (others kept)."""
        return Schema(
            tuple(mapping.get(a, a) for a in self.attributes), self.types
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema concatenation for joins; raises on name clashes."""
        return Schema(self.attributes + other.attributes, self.types + other.types)


def check_union_compatible(left: Schema, right: Schema, what: str) -> None:
    """Union/difference compatibility: same arity AND attribute names.

    The evaluators used to check arity only and silently keep the left
    schema, which let positionally-compatible but differently-named
    inputs slip through; every construction site in the library renames
    union sides to a common schema, so a name mismatch is a bug in the
    caller and now fails loudly.
    """
    if left.arity != right.arity:
        raise SchemaError(
            f"{what} arity mismatch: {left.arity} vs {right.arity}"
        )
    if left.attributes != right.attributes:
        raise SchemaError(
            f"{what} attribute-name mismatch: {left.attributes} vs "
            f"{right.attributes}"
        )
