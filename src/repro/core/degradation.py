"""Process-global graceful-degradation counters.

When a layer survives a fault by degrading — the batch pool watchdog
rebuilding a broken process pool or dropping to serial execution, a
sharded evaluation falling back to one unsharded call, the service
re-answering a failed sqlite request on the compiled backend — the event
must be *visible*, or silent degradation rots into permanent slow paths
nobody notices.  Each fallback records itself here; the what-if
service's ``/health`` endpoint exposes the snapshot, and the resilience
tests assert on exact counts.

The registry is process-global (one flat counter per event kind) rather
than per-engine because degradation happens in layers that do not know
which service owns them — a shard fallback deep inside
``core/shard.py`` runs three frames below the request handler.  Counts
are monotonic; :func:`reset_degradation` exists for tests.
"""

from __future__ import annotations

import threading

__all__ = [
    "DegradationStats",
    "record_degradation",
    "degradation_snapshot",
    "reset_degradation",
]

#: Event kinds the library records (documented, not enforced — new
#: degradation paths may add kinds without touching this module):
#:
#: * ``pool_rebuild``   — a broken process pool was rebuilt once
#: * ``pool_serial``    — the rebuilt pool broke too; execution went serial
#: * ``shard_fallback`` — a per-shard failure re-ran one relation unsharded
#: * ``sqlite_fallback``— a sqlite-backend error re-answered on compiled


class DegradationStats:
    """Thread-safe monotonic counters keyed by event kind."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def record(self, kind: str, count: int = 1) -> None:
        with self._lock:
            self._counts[kind] = self._counts.get(kind, 0) + count

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


_GLOBAL = DegradationStats()


def record_degradation(kind: str, count: int = 1) -> None:
    _GLOBAL.record(kind, count)


def degradation_snapshot() -> dict[str, int]:
    return _GLOBAL.snapshot()


def reset_degradation() -> None:
    _GLOBAL.reset()
