"""Process-global graceful-degradation counters.

When a layer survives a fault by degrading — the batch pool watchdog
rebuilding a broken process pool or dropping to serial execution, a
sharded evaluation falling back to one unsharded call, the service
re-answering a failed sqlite request on the compiled backend — the event
must be *visible*, or silent degradation rots into permanent slow paths
nobody notices.  Each fallback records itself here; the what-if
service's ``/health`` endpoint exposes the snapshot, and the resilience
tests assert on exact counts.

The counters live in the process-global metrics registry
(:func:`repro.obs.metrics.global_registry`) as the single
``mahif_degradation_total{kind=...}`` family — one source of truth
shared by ``/health`` (this module's snapshot) and ``/metrics`` (the
Prometheus scrape).  They are process-global rather than per-engine
because degradation happens in layers that do not know which service
owns them — a shard fallback deep inside ``core/shard.py`` runs three
frames below the request handler.  Counts are monotonic;
:func:`reset_degradation` exists for tests.
"""

from __future__ import annotations

from ..obs.metrics import global_registry

__all__ = [
    "record_degradation",
    "degradation_snapshot",
    "reset_degradation",
]

#: Event kinds the library records (documented, not enforced — new
#: degradation paths may add kinds without touching this module):
#:
#: * ``pool_rebuild``   — a broken process pool was rebuilt once
#: * ``pool_serial``    — the rebuilt pool broke too; execution went serial
#: * ``shard_fallback`` — a per-shard failure re-ran one relation unsharded
#: * ``sqlite_fallback``— a sqlite-backend error re-answered on compiled

_COUNTER = global_registry().counter(
    "mahif_degradation_total",
    "Graceful-degradation events by kind (pool_rebuild, pool_serial, "
    "shard_fallback, sqlite_fallback).",
    ("kind",),
)


def record_degradation(kind: str, count: int = 1) -> None:
    _COUNTER.inc(count, kind=kind)


def degradation_snapshot() -> dict[str, int]:
    return {key[0]: int(value) for key, value in _COUNTER.series().items()}


def reset_degradation() -> None:
    _COUNTER.reset()
