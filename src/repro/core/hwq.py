"""Historical what-if queries and history modifications (Section 3).

A historical what-if query ``H = (H, D, M)`` pairs a history with a
sequence of modifications:

* ``Replace(i, u')`` — the paper's ``u_i <- u'``,
* ``InsertStatementMod(i, u)`` — ``ins_i(u)``: insert ``u`` before the
  original position ``i`` (``n+1`` appends),
* ``DeleteStatementMod(i)`` — ``del(i)``: drop the statement at ``i``.

Positions always refer to the *original* history, which keeps a sequence
of modifications unambiguous.

Modifications are *normalized into an aligned pair* of equal-length
histories by padding with no-ops (``DELETE WHERE false``), exactly as
Section 6 prescribes: an inserted statement is paired with a no-op on the
original side, a deleted statement with a no-op on the modified side.
Every downstream component (reenactment, data slicing, program slicing)
consumes aligned pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..relational.database import Database
from ..relational.history import History
from ..relational.statements import Statement, is_no_op, no_op

__all__ = [
    "Modification",
    "Replace",
    "InsertStatementMod",
    "DeleteStatementMod",
    "AlignedHistories",
    "align",
    "HistoricalWhatIfQuery",
    "ModificationError",
]


class ModificationError(Exception):
    """Raised for invalid modification sequences."""


class Modification:
    """Base class for history modifications."""

    position: int


@dataclass(frozen=True)
class Replace(Modification):
    """``u_position <- statement``."""

    position: int
    statement: Statement


@dataclass(frozen=True)
class InsertStatementMod(Modification):
    """``ins_position(statement)``: insert before original position."""

    position: int
    statement: Statement


@dataclass(frozen=True)
class DeleteStatementMod(Modification):
    """``del(position)``: remove the statement at the original position."""

    position: int


@dataclass(frozen=True)
class AlignedHistories:
    """A pair of equal-length no-op-padded histories ``(H, H[M])``.

    ``modified_positions`` are the (1-based) aligned positions where the
    two sides differ — the statements "affected by M" that drive both
    slicing optimizations.
    """

    original: History
    modified: History

    def __post_init__(self) -> None:
        if len(self.original) != len(self.modified):
            raise ModificationError("aligned histories must have equal length")

    def __len__(self) -> int:
        return len(self.original)

    @property
    def modified_positions(self) -> tuple[int, ...]:
        return tuple(
            i
            for i in self.original.positions()
            if self.original[i] != self.modified[i]
        )

    def pairs(self) -> Iterable[tuple[int, Statement, Statement]]:
        """Iterate ``(position, u, u')`` triples."""
        for i in self.original.positions():
            yield i, self.original[i], self.modified[i]

    def first_modified_position(self) -> int | None:
        positions = self.modified_positions
        return positions[0] if positions else None

    def trim_prefix(self) -> tuple["AlignedHistories", int]:
        """Drop the common prefix before the first modified statement.

        Returns the trimmed pair and the number of dropped statements
        ``k``; reenactment must then start from ``D_k`` (the database
        version after the prefix), the WLOG normalization of Section 4.
        """
        first = self.first_modified_position()
        if first is None or first == 1:
            return self, 0
        k = first - 1
        return (
            AlignedHistories(
                History(self.original.statements[k:]),
                History(self.modified.statements[k:]),
            ),
            k,
        )

    def subset(self, indices: Iterable[int]) -> "AlignedHistories":
        """Aligned pair restricted to positions ``I`` (history slices)."""
        wanted = sorted(set(indices))
        return AlignedHistories(
            self.original.subset(wanted), self.modified.subset(wanted)
        )

    def target_relations_of_modifications(self) -> set[str]:
        """Relations written by at least one modified statement."""
        relations: set[str] = set()
        for i in self.modified_positions:
            relations.add(self.original[i].relation)
            relations.add(self.modified[i].relation)
        return relations


def align(history: History, modifications: Sequence[Modification]) -> AlignedHistories:
    """Normalize ``(H, M)`` into an aligned, no-op-padded pair.

    Replacing a statement with one of a different type or different target
    relation is supported: padding reduces every modification to a
    same-position replacement, as described in Section 6.
    """
    n = len(history)
    replacements: dict[int, Statement] = {}
    deletions: set[int] = set()
    insertions: dict[int, list[Statement]] = {}

    for modification in modifications:
        position = modification.position
        if isinstance(modification, Replace):
            if not 1 <= position <= n:
                raise ModificationError(
                    f"replace position {position} out of range 1..{n}"
                )
            if position in replacements or position in deletions:
                raise ModificationError(
                    f"conflicting modifications at position {position}"
                )
            replacements[position] = modification.statement
        elif isinstance(modification, DeleteStatementMod):
            if not 1 <= position <= n:
                raise ModificationError(
                    f"delete position {position} out of range 1..{n}"
                )
            if position in replacements or position in deletions:
                raise ModificationError(
                    f"conflicting modifications at position {position}"
                )
            deletions.add(position)
        elif isinstance(modification, InsertStatementMod):
            if not 1 <= position <= n + 1:
                raise ModificationError(
                    f"insert position {position} out of range 1..{n + 1}"
                )
            insertions.setdefault(position, []).append(modification.statement)
        else:
            raise ModificationError(f"unknown modification {modification!r}")

    original_side: list[Statement] = []
    modified_side: list[Statement] = []
    for i in range(1, n + 2):
        for inserted in insertions.get(i, []):
            original_side.append(no_op(inserted.relation))
            modified_side.append(inserted)
        if i <= n:
            statement = history[i]
            if i in deletions:
                original_side.append(statement)
                modified_side.append(no_op(statement.relation))
            elif i in replacements:
                original_side.append(statement)
                modified_side.append(replacements[i])
            else:
                original_side.append(statement)
                modified_side.append(statement)
    return AlignedHistories(
        History(tuple(original_side)), History(tuple(modified_side))
    )


@dataclass(frozen=True)
class HistoricalWhatIfQuery:
    """A historical what-if query ``H = (H, D, M)`` (Definition 2).

    ``database`` is the state *before* the history executed (accessed via
    time travel in a production deployment); the answer is
    ``Δ(H(D), H[M](D))``.
    """

    history: History
    database: Database
    modifications: tuple[Modification, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "modifications", tuple(self.modifications)
        )
        if not self.modifications:
            raise ModificationError(
                "a historical what-if query needs at least one modification"
            )
        # Validate positions eagerly: align() raises on bad input.
        align(self.history, self.modifications)

    def aligned(self) -> AlignedHistories:
        """The normalized no-op-padded pair ``(H, H[M])``."""
        return align(self.history, self.modifications)

    def modified_history(self) -> History:
        """``H[M]`` with padding no-ops removed (user-facing view)."""
        aligned = self.aligned()
        return History(
            tuple(s for s in aligned.modified.statements if not is_no_op(s))
        )
