"""Insert splitting (Section 10).

The reenactment query of a history with constant inserts is a stack of
projections/selections over unions.  Pulling the unions up (the standard
``Π(Q1 ∪ Q2) = Π(Q1) ∪ Π(Q2)`` / ``σ(Q1 ∪ Q2) = σ(Q1) ∪ σ(Q2)``
equivalences) splits it into

* the reenactment of the history *without* inserts over the base
  relations — the part program slicing can optimize, and
* a query over only the inserted tuples — at most ``|H|`` tuples, cheap to
  evaluate directly.

This module performs the split at the history level: it removes ``I_t``
statements and *replays the full history over an initially-empty database*
to materialize each side's inserted-tuple contribution.  The final result
of the original history is the union of the two parts (valid for
set-semantics tuple-independent statements; inserts with queries disable
the split because ``Q(A ∪ B) ≠ Q(A) ∪ Q(B)`` in general).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..relational.database import Database
from ..relational.history import History
from ..relational.relation import Relation
from ..relational.schema import Schema
from ..relational.statements import InsertQuery, InsertTuple
from .hwq import AlignedHistories, ModificationError

__all__ = ["InsertSplit", "split_inserts", "can_split"]


@dataclass(frozen=True)
class InsertSplit:
    """Result of splitting an aligned pair.

    ``without_inserts``: the aligned pair with every ``I_t`` replaced by a
    no-op (positions are preserved, so slicing bookkeeping stays stable);
    ``inserted_original`` / ``inserted_modified``: the inserted-tuple side
    results for each history, already evaluated (at most ``|H|`` tuples).
    """

    without_inserts: AlignedHistories
    insert_positions: tuple[int, ...]
    inserted_original: Database
    inserted_modified: Database


def can_split(aligned: AlignedHistories) -> bool:
    """The split applies when no statement is an ``INSERT ... SELECT``."""
    return not any(
        isinstance(stmt, InsertQuery)
        for stmt in tuple(aligned.original.statements)
        + tuple(aligned.modified.statements)
    )


def _empty_database(schemas: Mapping[str, Schema]) -> Database:
    return Database(
        {name: Relation.empty(schema) for name, schema in schemas.items()}
    )


def split_inserts(
    aligned: AlignedHistories, schemas: Mapping[str, Schema]
) -> InsertSplit:
    """Split constant inserts out of an aligned pair.

    A position is dropped when *either* side is an ``I_t`` (its partner is
    then a no-op or another insert by construction of the alignment); the
    inserted tuples and everything the suffix statements do to them are
    captured by replaying each full history over an empty database.
    """
    if not can_split(aligned):
        raise ModificationError(
            "insert splitting requires histories without INSERT ... SELECT"
        )

    from ..relational.statements import no_op

    insert_positions: list[int] = []
    original_side = list(aligned.original.statements)
    modified_side = list(aligned.modified.statements)
    for position in aligned.original.positions():
        index = position - 1
        changed = False
        if isinstance(original_side[index], InsertTuple):
            original_side[index] = no_op(original_side[index].relation)
            changed = True
        if isinstance(modified_side[index], InsertTuple):
            modified_side[index] = no_op(modified_side[index].relation)
            changed = True
        if changed:
            insert_positions.append(position)

    without = AlignedHistories(
        History(tuple(original_side)), History(tuple(modified_side))
    )
    empty = _empty_database(schemas)
    inserted_original = aligned.original.execute(empty)
    inserted_modified = aligned.modified.execute(empty)
    return InsertSplit(
        without_inserts=without,
        insert_positions=tuple(insert_positions),
        inserted_original=inserted_original,
        inserted_modified=inserted_modified,
    )
