"""The naive HWQ algorithm (Algorithm 1).

Copy the database as of the start of the (trimmed) history, execute the
modified history over the copy by *actually running the statements* (write
I/O!), then compute the delta between the current state and the copy's
final state with one delta query per relation.

The three phases are timed separately because Figure 15 of the paper
reports the naive method's Creation / Exe / Delta breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..relational.database import Database
from ..relational.exec.backend import use_backend
from ..relational.relation import Relation
from .delta import DatabaseDelta
from .hwq import HistoricalWhatIfQuery

__all__ = ["NaiveResult", "naive_what_if"]


@dataclass(frozen=True)
class NaiveResult:
    """Answer plus the phase timing breakdown of Figure 15."""

    delta: DatabaseDelta
    creation_seconds: float
    execution_seconds: float
    delta_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.creation_seconds + self.execution_seconds + self.delta_seconds


def _copy_database(db: Database, relations: set[str]) -> Database:
    """Deep-copy the relations accessed by the history.

    The in-memory engine shares immutable storage, so to faithfully model
    the naive method's copy cost we materialize fresh tuple sets (this is
    the write amplification Algorithm 1 pays and reenactment avoids).
    """
    copied: dict[str, Relation] = {}
    for name in relations:
        source = db[name]
        copied[name] = Relation(
            source.schema, frozenset(tuple(t) for t in source.tuples)
        )
    result = db
    for name, relation in copied.items():
        result = result.with_relation(name, relation)
    return result


def naive_what_if(
    query: HistoricalWhatIfQuery,
    current_state: Database | None = None,
    backend: str | None = None,
) -> NaiveResult:
    """Answer a HWQ with Algorithm 1.

    ``current_state`` is ``H(D)`` when the caller already has it (the DBMS
    always does — it *is* the database); otherwise it is computed here but
    not charged to any phase, mirroring the paper's accounting.

    ``backend`` scopes the execution backend used for statement replay
    (UPDATE/DELETE predicates and Set clauses run compiled by default);
    ``None`` keeps the ambient default, e.g. the engine's configured one.
    """
    with use_backend(backend):
        return _naive_what_if(query, current_state)


def _naive_what_if(
    query: HistoricalWhatIfQuery,
    current_state: Database | None,
) -> NaiveResult:
    aligned = query.aligned()
    trimmed, k = aligned.trim_prefix()

    # Time travel to the state before the first modified statement.
    start_db = query.history.prefix(k).execute(query.database)
    if current_state is None:
        current_state = trimmed.original.execute(start_db)

    accessed = trimmed.modified.accessed_relations() | trimmed.original.accessed_relations()

    t0 = time.perf_counter()
    copy = _copy_database(start_db, accessed)
    t1 = time.perf_counter()
    modified_state = trimmed.modified.execute(copy)
    t2 = time.perf_counter()
    delta = DatabaseDelta.between(current_state, modified_state)
    t3 = time.perf_counter()

    return NaiveResult(
        delta=delta,
        creation_seconds=t1 - t0,
        execution_seconds=t2 - t1,
        delta_seconds=t3 - t2,
    )
