"""Batched what-if answering: N queries over a shared history, one call.

The paper's headline is that reenactment + slicing make historical
what-if queries cheap enough to answer interactively *and in volume*;
this module supplies the volume half (see DESIGN.md, "Batched
answering").  :func:`answer_batch_with` amortizes three things a
sequential ``answer`` loop repeats per query:

1. **Time travel** — every distinct ``(database, history-prefix)``
   version is materialized once; versions are built shallowest-first so
   a deeper prefix replays only the statements past the deepest shared
   prefix already computed.
2. **Reenactment planning** — queries whose (sliced) statement pairs are
   structurally identical share finished operator trees, data-slicing
   conditions and optimized plans through a keyed cache one level above
   the compiled-plan cache (``engine._plan_reenactment``).  Static plan
   verification (``MahifConfig(verify_plans=True)``, see DESIGN.md
   "Static analysis") rides the same hook: fresh plans are verified and
   their optimizer rewrites certified once, cache hits skip the check.
3. **Delta evaluation** — per-(query, relation) evaluations fan out over
   a ``concurrent.futures`` pool: a *process* pool for the in-process
   backends (pure-Python evaluation does not parallelize under the GIL;
   operator trees, databases and deltas all pickle, and workers compile
   trees into their own per-process plan caches), a *thread* pool for
   sqlite (the C engine releases the GIL and the connection cache is
   per-thread).

Worker tasks are module-level functions so they pickle by reference for
the process pool.  Process-pool IPC is bounded per *query*, not per
(query, relation): plan results are returned with ``start_db`` stripped
and a query's relation evaluations are grouped into one submission.
The remaining known cost is that a batch-shared database still pickles
once per query per phase (inside the query for planning, as ``start_db``
for evaluation); shipping it once per worker via an executor
initializer is the next step if profiles ever show it dominating.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable, Sequence

from ..obs import trace
from ..relational.database import Database
from ..relational.exec.backend import BACKEND_SQLITE, resolve_backend
from ..relational.statements import Statement
from .degradation import record_degradation
from .delta import DatabaseDelta, RelationDelta
from .engine import (
    Mahif,
    MahifResult,
    Method,
    _relation_delta_task,
    _statement_share_key,
)
from .hwq import HistoricalWhatIfQuery
from .naive import NaiveResult, naive_what_if

__all__ = [
    "ResilientExecutor",
    "answer_batch_with",
    "shared_start_databases",
]


def _trimmed_prefix(query: HistoricalWhatIfQuery) -> tuple[Statement, ...]:
    """The statements before the query's first modified position."""
    _, prefix_length = query.aligned().trim_prefix()
    return tuple(query.history.statements[:prefix_length])


def shared_start_databases(
    queries: Sequence[HistoricalWhatIfQuery],
) -> list[Database]:
    """The time-travelled start database for every query, shared.

    Queries over the same database instance share prefix replay work:
    distinct prefixes are materialized shallowest-first, each starting
    from the deepest already-materialized prefix of itself, so a batch
    whose modifications all sit at one position replays the common
    prefix exactly once.  Statements run through the ambient execution
    backend, like the sequential path.
    """
    prefixes = [_trimmed_prefix(query) for query in queries]
    keys: list[tuple | None] = []
    for query, prefix in zip(queries, prefixes):
        # Statements hash via their structural share key (UpdateStatement
        # carries a dict); unhashable constants fall back to no sharing.
        # Building the tuple never hashes, so probe with hash() here —
        # otherwise the TypeError would escape from versions.get() below.
        try:
            key = (
                id(query.database),
                tuple(_statement_share_key(s) for s in prefix),
            )
            hash(key)
            keys.append(key)
        except TypeError:
            keys.append(None)
    versions: dict[tuple, Database] = {}
    results: list[Database | None] = [None] * len(queries)
    for index in sorted(range(len(queries)), key=lambda i: len(prefixes[i])):
        query, prefix, key = queries[index], prefixes[index], keys[index]
        state = versions.get(key) if key is not None else None
        if state is None:
            base, done = query.database, 0
            if key is not None:
                db_id, prefix_key = key
                for (other_id, other), other_state in versions.items():
                    if (
                        other_id == db_id
                        and done < len(other) <= len(prefix)
                        and other == prefix_key[: len(other)]
                    ):
                        base, done = other_state, len(other)
            state = base
            for stmt in prefix[done:]:
                state = stmt.apply(state)
            if key is not None:
                versions[key] = state
        results[index] = state
    return results  # type: ignore[return-value]


class ResilientExecutor:
    """A pool with a watchdog: rebuild a broken pool once, then serial.

    A SIGKILLed (OOM-killed, crashed) process-pool worker poisons the
    whole ``ProcessPoolExecutor`` — every pending and future submission
    raises :class:`BrokenProcessPool`.  Batch tasks are pure functions
    of their arguments, so the whole call list can safely re-run: the
    watchdog rebuilds the pool via its factory exactly once
    (``pool_rebuild`` degradation event) and, if the rebuilt pool breaks
    too, degrades permanently to serial in-process execution
    (``pool_serial``) — the batch *always* returns the same deltas as
    the serial oracle, only slower.

    Thread pools cannot break this way, but wrapping both kinds keeps
    one executor type flowing through the batch and shard paths.
    """

    def __init__(self, factory: Callable[[], Executor], kind: str) -> None:
        self._factory = factory
        self.kind = kind  # "process" | "thread"
        self._executor: Executor | None = factory()
        self._lock = threading.Lock()
        self._rebuilt = False
        self._serial = False

    def submit(self, task, *args):
        """Direct submission for callers that manage futures themselves
        (no watchdog protection — use :meth:`run` for that)."""
        return self._executor.submit(task, *args)

    def run(self, task: Callable, calls: Sequence[tuple]) -> list:
        """Run ``task`` over every call tuple, surviving a broken pool."""
        while True:
            with self._lock:
                serial, executor = self._serial, self._executor
            if serial or executor is None:
                return [task(*args) for args in calls]
            try:
                futures = [executor.submit(task, *args) for args in calls]
                return [future.result() for future in futures]
            except BrokenExecutor:
                self._degrade(executor)

    def run_settled(self, task: Callable, calls: Sequence[tuple]) -> list:
        """Like :meth:`run`, but capture per-call failures as
        ``(False, exception)`` instead of raising (``(True, result)``
        for successes).  A broken *pool* is not a per-call failure —
        it triggers the watchdog and the whole list re-runs."""
        while True:
            with self._lock:
                serial, executor = self._serial, self._executor
            if serial or executor is None:
                return _settle_serial(task, calls)
            try:
                futures = [executor.submit(task, *args) for args in calls]
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append((True, future.result()))
                    except BrokenExecutor:
                        raise
                    except Exception as exc:
                        outcomes.append((False, exc))
                return outcomes
            except BrokenExecutor:
                self._degrade(executor)

    def _degrade(self, broken: Executor) -> None:
        """Replace the broken pool (once) or drop to serial, exactly one
        transition per broken pool even under concurrent callers."""
        with self._lock:
            if self._executor is not broken:
                return  # another thread already handled this pool
            broken.shutdown(wait=False, cancel_futures=True)
            if not self._rebuilt:
                self._rebuilt = True
                self._executor = self._factory()
                record_degradation("pool_rebuild")
            else:
                self._serial = True
                self._executor = None
                record_degradation("pool_serial")

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False):
        with self._lock:
            executor, self._executor = self._executor, None
            self._serial = True
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=cancel_futures)


def _settle_serial(task: Callable, calls: Sequence[tuple]) -> list:
    outcomes = []
    for args in calls:
        try:
            outcomes.append((True, task(*args)))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


def _make_executor(backend: str, workers: int) -> ResilientExecutor | None:
    if workers <= 1:
        return None
    if backend == BACKEND_SQLITE:
        return ResilientExecutor(
            lambda: ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="mahif-batch"
            ),
            "thread",
        )

    def _process_pool() -> Executor:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: spawn/forkserver default
            context = None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    return ResilientExecutor(_process_pool, "process")


def _executor_kind(executor) -> str | None:
    """'process' / 'thread' / None across raw and watchdog executors."""
    if executor is None:
        return None
    if isinstance(executor, ResilientExecutor):
        return executor.kind
    if isinstance(executor, ThreadPoolExecutor):
        return "thread"
    if isinstance(executor, ProcessPoolExecutor):
        return "process"
    return None


def _run_tasks(
    executor,
    task: Callable,
    calls: Sequence[tuple],
) -> list:
    if executor is None:
        return [task(*args) for args in calls]
    if isinstance(executor, ResilientExecutor):
        return executor.run(task, calls)
    futures = [executor.submit(task, *args) for args in calls]
    return [future.result() for future in futures]


def _run_tasks_settled(
    executor,
    task: Callable,
    calls: Sequence[tuple],
) -> list:
    """Per-call ``(ok, result-or-exception)`` pairs; pool breakage is
    handled by the watchdog (wrapped executors) or propagates (raw)."""
    if executor is None:
        return _settle_serial(task, calls)
    if isinstance(executor, ResilientExecutor):
        return executor.run_settled(task, calls)
    futures = [executor.submit(task, *args) for args in calls]
    outcomes = []
    for future in futures:
        try:
            outcomes.append((True, future.result()))
        except Exception as exc:
            outcomes.append((False, exc))
    return outcomes


def _naive_task(
    backend: str, query: HistoricalWhatIfQuery
) -> NaiveResult:
    """Whole-query task for the NAIVE method (no per-relation split)."""
    return naive_what_if(query, backend=backend)


def _plan_task(config, query, method, start_db, shared=None):
    """Per-query planning (insert split + program slicing + reenactment
    trees) as a pool task: slicing is solver-bound pure Python, so it
    must cross to worker processes to parallelize.  ``shared`` is only
    passed on thread pools, where the keyed plan cache can be mutated in
    place; process workers rely on their per-process compiled-plan
    caches instead.

    The returned plan has ``start_db`` stripped — the caller already
    holds it, and shipping the database back through the process pool's
    result pickle would double the IPC cost."""
    from ..relational.exec.backend import use_backend

    with use_backend(config.backend):
        plan = Mahif(config)._plan_reenactment(
            query, method, start_db=start_db, shared=shared
        )
    return dataclasses.replace(plan, start_db=None)


def _query_deltas_task(backend, start_db, items):
    """All of one query's per-relation delta evaluations in one task.

    Process-pool submissions are grouped per query so the (potentially
    large, batch-shared) start database crosses the IPC boundary once
    per query instead of once per (query, relation).  Each relation is
    still evaluated and timed individually."""
    return [
        (
            relation,
            *_relation_delta_task(
                backend, query_h, query_m, start_db, extra_h, extra_m
            ),
        )
        for relation, query_h, query_m, extra_h, extra_m in items
    ]


def answer_batch_with(
    engine: Mahif,
    queries: Sequence[HistoricalWhatIfQuery],
    method: Method,
    workers: int | None = None,
    start_databases: Sequence[Database] | None = None,
    *,
    explain: bool = False,
) -> list[MahifResult]:
    """Answer ``queries`` with ``method``; the worker behind
    :meth:`Mahif.answer_batch` (which scopes the configured backend).

    ``start_databases`` optionally injects the time-travelled state
    before each query's first modified statement — the what-if service
    passes versions reconstructed from a :class:`~repro.store.
    HistoryStore` checkpoint (nearest checkpoint + bounded replay)
    instead of replaying the whole prefix here.

    ``explain=True`` attaches EXPLAIN ANALYZE per-operator profiles to
    every result; profiled evaluation runs serially in-process (per-node
    materialization is a diagnostic mode — the pool and shard fan-outs
    are bypassed), though plan construction still shares work across
    the batch.
    """
    if not queries:
        return []
    if start_databases is not None and len(start_databases) != len(queries):
        raise ValueError(
            "start_databases must supply one database per query"
        )
    config = engine.config
    backend = resolve_backend(config.backend)
    if workers is None:
        workers = config.batch_workers
    executor = _make_executor(backend, workers)
    try:
        if method is Method.NAIVE:
            naives = _run_tasks(
                executor, _naive_task, [(backend, q) for q in queries]
            )
            return [
                MahifResult(
                    delta=naive.delta,
                    method=method,
                    exe_seconds=naive.total_seconds,
                    naive_breakdown=naive,
                )
                for naive in naives
            ]
        return _answer_reenactment_batch(
            engine, backend, queries, method, executor, start_databases,
            explain=explain,
        )
    finally:
        if executor is not None:
            # cancel_futures: a failing task propagates immediately
            # instead of letting the rest of the batch run to completion.
            executor.shutdown(cancel_futures=True)


def _answer_reenactment_batch(
    engine: Mahif,
    backend: str,
    queries: Sequence[HistoricalWhatIfQuery],
    method: Method,
    executor: Executor | None,
    start_databases: Sequence[Database] | None = None,
    explain: bool = False,
) -> list[MahifResult]:
    start_dbs = (
        list(start_databases)
        if start_databases is not None
        else shared_start_databases(queries)
    )
    shared: dict | None = {} if engine.config.batch_share_plans else None
    with trace.span(
        "plan", method=method.value, queries=len(queries)
    ) as plan_span:
        if executor is None:
            plans = [
                engine._plan_reenactment(
                    query, method, start_db=start_db, shared=shared
                )
                for query, start_db in zip(queries, start_dbs)
            ]
        else:
            # Only thread pools can mutate the shared cache in place.
            shared_arg = (
                shared if _executor_kind(executor) == "thread" else None
            )
            plans = [
                dataclasses.replace(plan, start_db=start_db)
                for plan, start_db in zip(
                    _run_tasks(
                        executor,
                        _plan_task,
                        [
                            (
                                engine.config, query, method,
                                start_db, shared_arg,
                            )
                            for query, start_db in zip(queries, start_dbs)
                        ],
                    ),
                    start_dbs,
                )
            ]
        plan_span.set_attributes(
            {
                "affected": sum(len(p.affected) for p in plans),
                "ps_seconds": sum(p.ps_seconds for p in plans),
            }
        )

    def _extras(plan, relation):
        return (
            plan.inserted_original[relation]
            if plan.inserted_original is not None
            else None,
            plan.inserted_modified[relation]
            if plan.inserted_modified is not None
            else None,
        )

    deltas: list[dict[str, RelationDelta]] = [{} for _ in queries]
    eval_seconds = [0.0] * len(queries)
    choices: list = [None] * len(queries)
    profiles: list[dict | None] = [None] * len(queries)
    auto = engine.config.shards_auto
    if explain:
        # EXPLAIN ANALYZE: serial in-process profiled evaluation (plan
        # construction above still shared the batch's common work).
        from ..obs.profile import profile_query

        with trace.span("execute", mode="profiled", queries=len(plans)):
            for index, plan in enumerate(plans):
                query_profiles: dict[str, dict] = {}
                for relation in sorted(plan.affected):
                    t0 = time.perf_counter()
                    result_h, prof_h = profile_query(
                        plan.queries_h[relation], plan.start_db,
                        backend=backend,
                    )
                    result_m, prof_m = profile_query(
                        plan.queries_m[relation], plan.start_db,
                        backend=backend,
                    )
                    extra_h, extra_m = _extras(plan, relation)
                    if extra_h is not None:
                        result_h = result_h.union(extra_h)
                    if extra_m is not None:
                        result_m = result_m.union(extra_m)
                    deltas[index][relation] = RelationDelta.between(
                        result_h, result_m
                    )
                    seconds = time.perf_counter() - t0
                    eval_seconds[index] += seconds
                    trace.record_span(
                        "relation", seconds,
                        relation=relation, query=index, profiled=True,
                    )
                    query_profiles[relation] = {
                        "original": prof_h,
                        "modified": prof_m,
                    }
                profiles[index] = query_profiles
    elif auto or engine.config.shards > 1:
        # Sharded execution: fan out at (query, relation, shard)
        # granularity through the same executor.  A shard call ships
        # only its own shard's database and an unshardable fallback
        # call only the relations its query pair scans, so the
        # per-query grouping that bounds start-database pickling in the
        # unsharded process-pool path is unnecessary here.  Partition
        # lists are memoized across queries sharing a start database.
        # Under ``shards="auto"`` the adaptive planner prices each plan
        # *individually* — one batch can mix sharded and sequential
        # members (a shards=1 choice becomes a single unsharded call).
        from .shard import evaluate_shard_works, plan_relation_shards

        if auto:
            from .planner import plan_execution

            for index, plan in enumerate(plans):
                choices[index] = plan_execution(
                    plan, engine.config, backend=backend
                )

        partitions: dict = {}
        owners: list[int] = []
        works = []
        with trace.span("partition", queries=len(plans)) as part_span:
            for index, plan in enumerate(plans):
                choice = choices[index]
                shards = (
                    choice.shards if choice is not None
                    else engine.config.shards
                )
                scheme = (
                    choice.scheme if choice is not None
                    else engine.config.shard_scheme
                )
                hints = choice.estimates if choice is not None else None
                for relation in sorted(plan.affected):
                    owners.append(index)
                    work = plan_relation_shards(
                        backend,
                        plan,
                        relation,
                        shards,
                        scheme,
                        partitions,
                        hints,
                    )
                    works.append(work)
                    part_span.add_event(
                        "route",
                        relation=work.relation,
                        query=index,
                        shards=work.shard_count,
                        evaluated=len(work.calls),
                        skipped=work.skipped,
                        sharded=work.sharded,
                    )
        with trace.span("execute", mode="sharded", relations=len(works)):
            merged = evaluate_shard_works(works, executor)
        for index, work, (delta, seconds) in zip(owners, works, merged):
            deltas[index][work.relation] = delta
            eval_seconds[index] += seconds
    elif _executor_kind(executor) == "process":
        # Grouped per query: the start database pickles once per query.
        with trace.span("execute", mode="process-pool", queries=len(plans)):
            grouped = _run_tasks(
                executor,
                _query_deltas_task,
                [
                    (
                        backend,
                        plan.start_db,
                        [
                            (
                                relation,
                                plan.queries_h[relation],
                                plan.queries_m[relation],
                                *_extras(plan, relation),
                            )
                            for relation in sorted(plan.affected)
                        ],
                    )
                    for plan in plans
                ],
            )
            for index, query_outcomes in enumerate(grouped):
                for relation, delta, seconds in query_outcomes:
                    deltas[index][relation] = delta
                    eval_seconds[index] += seconds
                    trace.record_span(
                        "relation", seconds, relation=relation, query=index
                    )
    else:
        # In-process (serial) or thread pool: no pickling, so fan out at
        # per-(query, relation) granularity for maximum overlap.
        calls: list[tuple] = []
        owners: list[tuple[int, str]] = []
        for index, plan in enumerate(plans):
            for relation in sorted(plan.affected):
                calls.append(
                    (
                        backend,
                        plan.queries_h[relation],
                        plan.queries_m[relation],
                        plan.start_db,
                        *_extras(plan, relation),
                    )
                )
                owners.append((index, relation))
        mode = "thread-pool" if executor is not None else "serial"
        with trace.span("execute", mode=mode, relations=len(calls)):
            outcomes = _run_tasks(executor, _relation_delta_task, calls)
            for (index, relation), (delta, seconds) in zip(
                owners, outcomes
            ):
                deltas[index][relation] = delta
                eval_seconds[index] += seconds
                trace.record_span(
                    "relation", seconds, relation=relation, query=index
                )

    return [
        MahifResult(
            delta=DatabaseDelta(deltas[index]),
            method=method,
            ps_seconds=plan.ps_seconds,
            exe_seconds=plan.build_seconds + eval_seconds[index],
            slice_result=plan.slice_result,
            data_slicing=plan.data_slicing,
            queries_original=plan.queries_h,
            queries_modified=plan.queries_m,
            base_database=plan.start_db,
            planner_choice=choices[index],
            profile=profiles[index],
        )
        for index, plan in enumerate(plans)
    ]
