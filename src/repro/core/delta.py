"""Database deltas — the answers to historical what-if queries.

``Δ(D, D')`` contains every tuple in exactly one of the two databases,
annotated ``+`` (only in D', i.e. produced by the hypothetical history) or
``-`` (only in D, i.e. produced by the real history) — Section 3.

The delta can be computed directly from two databases or expressed as a
relational-algebra query (the paper evaluates it as one query per
relation; :func:`delta_query` builds exactly that query so the SQL surface
can be inspected/rendered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..relational.algebra import (
    Difference,
    Operator,
    Project,
    Union,
)
from ..relational.database import Database
from ..relational.expressions import Attr, Const
from ..relational.relation import Relation
from ..relational.schema import Schema

__all__ = ["RelationDelta", "DatabaseDelta", "delta_query"]


@dataclass(frozen=True, eq=False)
class RelationDelta:
    """Delta of one relation: tuples added / removed by the modification.

    Equality compares attribute names and tuple sets; schema *type tags*
    are ignored because derived queries (reenactment projections) produce
    untyped schemas for the same data.
    """

    schema: Schema
    added: frozenset[tuple[Any, ...]]
    removed: frozenset[tuple[Any, ...]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationDelta):
            return NotImplemented
        return (
            self.schema.attributes == other.schema.attributes
            and self.added == other.added
            and self.removed == other.removed
        )

    def __hash__(self) -> int:
        return hash((self.schema.attributes, self.added, self.removed))

    @classmethod
    def between(cls, current: Relation, modified: Relation) -> "RelationDelta":
        """``Δ(current, modified)`` with +/- annotations."""
        return cls(
            current.schema,
            added=frozenset(modified.tuples - current.tuples),
            removed=frozenset(current.tuples - modified.tuples),
        )

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def annotated_rows(self) -> Iterator[tuple[str, tuple[Any, ...]]]:
        """Iterate ``('+', t)`` / ``('-', t)`` pairs, deterministic order."""
        for row in sorted(self.removed, key=repr):
            yield ("-", row)
        for row in sorted(self.added, key=repr):
            yield ("+", row)

    def pretty(self) -> str:
        lines = []
        for sign, row in self.annotated_rows():
            cells = ", ".join(str(v) for v in row)
            lines.append(f"{sign} ({cells})")
        return "\n".join(lines) if lines else "(empty delta)"


@dataclass(frozen=True)
class DatabaseDelta:
    """Delta of a whole database, keyed by relation name."""

    relations: Mapping[str, RelationDelta]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "relations",
            {
                name: delta
                for name, delta in dict(self.relations).items()
                if not delta.is_empty()
            },
        )

    @classmethod
    def between(cls, current: Database, modified: Database) -> "DatabaseDelta":
        """``Δ(D_current, D_modified)`` across all relations."""
        names = set(current.relations) | set(modified.relations)
        deltas: dict[str, RelationDelta] = {}
        for name in names:
            cur = current.relations.get(name)
            mod = modified.relations.get(name)
            if cur is None and mod is None:
                continue
            if cur is None:
                cur = Relation.empty(mod.schema)  # type: ignore[union-attr]
            if mod is None:
                mod = Relation.empty(cur.schema)
            deltas[name] = RelationDelta.between(cur, mod)
        return cls(deltas)

    def is_empty(self) -> bool:
        return not self.relations

    def __len__(self) -> int:
        return sum(len(d) for d in self.relations.values())

    def __getitem__(self, name: str) -> RelationDelta:
        delta = self.relations.get(name)
        if delta is None:
            # relations with no difference are empty deltas
            raise KeyError(name)
        return delta

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseDelta):
            return NotImplemented
        return dict(self.relations) == dict(other.relations)

    def pretty(self) -> str:
        if self.is_empty():
            return "(empty delta)"
        parts = []
        for name in sorted(self.relations):
            parts.append(f"== Δ {name} ==")
            parts.append(self.relations[name].pretty())
        return "\n".join(parts)


def delta_query(
    schema: Schema, current: Operator, modified: Operator
) -> Operator:
    """The paper's delta query (Section 4)::

        Π_{A, '-'}(Q_cur − Q_mod) ∪ Π_{A, '+'}(Q_mod − Q_cur)

    Output schema is the relation's schema plus an ``_annotation`` column.
    """
    attributes = [(Attr(a), a) for a in schema.attributes]
    minus = Project(
        Difference(current, modified),
        tuple(attributes + [(Const("-"), "_annotation")]),
    )
    plus = Project(
        Difference(modified, current),
        tuple(attributes + [(Const("+"), "_annotation")]),
    )
    return Union(minus, plus)
