"""Mahif core: the paper's contribution.

Historical what-if queries (Section 3), the naive algorithm (Section 4),
reenactment (Section 5), data slicing (Section 6), program slicing
(Sections 7–9), insert splitting (Section 10) and the engine facade that
wires them together (Algorithm 2).
"""

from .data_slicing import (
    DataSlicingConditions,
    compute_data_slicing,
    push_condition_through_query,
    slicing_selectivity,
)
from .delta import DatabaseDelta, RelationDelta, delta_query
from .dependency import dependency_slice
from .engine import (
    Mahif,
    MahifConfig,
    MahifResult,
    Method,
    answer,
    answer_batch,
)
from .hwq import (
    AlignedHistories,
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    InsertStatementMod,
    Modification,
    ModificationError,
    Replace,
    align,
)
from .insert_split import InsertSplit, can_split, split_inserts
from .naive import NaiveResult, naive_what_if
from .planner import (
    AUTO_SHARDS,
    CostModel,
    ExecutionChoice,
    SelectivityEstimate,
    calibrate_cost_model,
    estimate_relation,
    plan_execution,
)
from .program_slicing import (
    ProgramSlicingConfig,
    SliceResult,
    greedy_slice,
    is_slice,
)
from .provenance import (
    SourceTuple,
    evaluate_with_provenance,
    explain_delta,
)
from .analysis import DependencyAnalysis, build_dependency_graph
from .equivalence import (
    EquivalenceResult,
    EquivalenceVerdict,
    check_history_equivalence,
)
from .reenactment import (
    reenact_statement,
    reenactment_queries,
    reenactment_query,
)

__all__ = [
    "HistoricalWhatIfQuery", "Modification", "Replace",
    "InsertStatementMod", "DeleteStatementMod", "AlignedHistories",
    "align", "ModificationError",
    "DatabaseDelta", "RelationDelta", "delta_query",
    "naive_what_if", "NaiveResult",
    "reenact_statement", "reenactment_query", "reenactment_queries",
    "DataSlicingConditions", "compute_data_slicing", "slicing_selectivity",
    "push_condition_through_query",
    "ProgramSlicingConfig", "SliceResult", "greedy_slice", "is_slice",
    "dependency_slice",
    "InsertSplit", "split_inserts", "can_split",
    "Mahif", "MahifConfig", "MahifResult", "Method", "answer",
    "answer_batch",
    "AUTO_SHARDS", "CostModel", "ExecutionChoice", "SelectivityEstimate",
    "calibrate_cost_model", "estimate_relation", "plan_execution",
    "SourceTuple", "evaluate_with_provenance", "explain_delta",
    "DependencyAnalysis", "build_dependency_graph",
    "EquivalenceVerdict", "EquivalenceResult", "check_history_equivalence",
]
