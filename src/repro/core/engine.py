"""The Mahif engine: Algorithm 2 and the method variants of Section 13.3.

``answer(query, method)`` supports the five methods the paper compares:

* ``NAIVE``     — Algorithm 1 (copy + execute + delta query),
* ``R``         — reenactment only,
* ``R_DS``      — reenactment + data slicing,
* ``R_PS``      — reenactment + program slicing,
* ``R_PS_DS``   — reenactment + both (Algorithm 2).

The pipeline, following the paper's WLOG normalizations:

1. align the histories (no-op padding) and trim the common prefix before
   the first modified statement; time travel to the database version at
   that point,
2. peel constant inserts away when program slicing is requested
   (Section 10),
3. program slicing (dependency analysis by default — Section 9 — or the
   greedy Theorem-4 search),
4. build per-relation reenactment queries for both sliced histories
   (Definition 3),
5. data slicing: inject per-relation filter conditions (Section 6),
6. evaluate both queries per affected relation, union the inserted-tuple
   side back in, and compute the delta (Section 4's delta query).

Relations not reachable from any modified statement provably have an
empty delta and are skipped outright.
"""

from __future__ import annotations

import enum
import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..relational.algebra import (
    Operator,
    base_relations,
    evaluate_query,
    inject_selection,
    operator_count,
)
from ..relational.database import Database
from ..relational.exec.backend import resolve_backend, use_backend
from ..relational.optimizer import OptimizerConfig, optimize
from ..relational.relation import Relation
from ..relational.schema import Schema
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)
from ..obs import trace
from .data_slicing import DataSlicingConditions, compute_data_slicing
from .delta import DatabaseDelta, RelationDelta
from .dependency import dependency_slice
from .hwq import AlignedHistories, HistoricalWhatIfQuery
from .insert_split import can_split, split_inserts
from .naive import NaiveResult, naive_what_if
from .planner import AUTO_SHARDS, ExecutionChoice
from .program_slicing import (
    ProgramSlicingConfig,
    SliceResult,
    greedy_slice,
)
from .reenactment import reenactment_queries

__all__ = [
    "Method",
    "MahifConfig",
    "MahifResult",
    "Mahif",
    "answer",
    "answer_batch",
]


class Method(enum.Enum):
    """The compared methods, labelled as in the paper's plots."""

    NAIVE = "N"
    R = "R"
    R_DS = "R+DS"
    R_PS = "R+PS"
    R_PS_DS = "R+PS+DS"

    @property
    def uses_program_slicing(self) -> bool:
        return self in (Method.R_PS, Method.R_PS_DS)

    @property
    def uses_data_slicing(self) -> bool:
        return self in (Method.R_DS, Method.R_PS_DS)


@dataclass(frozen=True)
class MahifConfig:
    """Engine configuration.

    ``slicing_algorithm`` selects between the Section-9 dependency
    analysis (``"dependency"``, the default — one solver call per
    statement) and the Section-8.3.3 greedy search (``"greedy"`` — one
    call per candidate, exact Theorem-4 checks).

    ``backend`` selects the execution backend for every query and
    statement evaluated while answering: ``"compiled"`` (the default)
    runs closure-compiled streaming pipelines with hash joins,
    ``"interpreted"`` the original tree-walking evaluator (kept as the
    differential-testing oracle), ``"sqlite"`` the middleware path of
    the paper — reenactment queries and statements are translated to
    SQL and executed server-side on an in-memory SQLite database — and
    ``"vector"`` columnar evaluation with whole-column kernels (NumPy
    when available, typed Python columns otherwise; see DESIGN.md,
    "Execution backends" and "Columnar execution").

    ``batch_workers`` and ``batch_share_plans`` configure
    :meth:`Mahif.answer_batch` (see DESIGN.md, "Batched answering"):
    ``batch_workers`` > 1 fans per-(query, relation) delta evaluations
    out over a worker pool — processes for the in-process backends,
    threads for sqlite (whose connection cache is per-thread and whose
    queries release the GIL) — while ``batch_share_plans`` reuses
    reenactment operator trees across batch queries that slice to the
    same statement set.

    ``shards`` > 1 turns on sharded execution (see DESIGN.md, "Sharded
    execution"): each affected relation is horizontally partitioned
    (``shard_scheme``: ``"range"`` clusters by the leading/key column so
    data-slicing routing can skip whole shards, ``"hash"`` balances
    arbitrary distributions), the reenactment pair is evaluated per
    shard, and the per-shard deltas merge back exactly.
    ``shard_workers`` > 1 fans the shard evaluations over the same kind
    of pool as ``batch_workers`` (0 evaluates shards serially, which
    still benefits from skip routing).

    ``verify_plans`` runs the static soundness layer (see DESIGN.md,
    "Static analysis") over every reenactment plan the engine builds:
    :func:`~repro.static_analysis.verify_plan` checks attribute
    resolution, schema compatibility and NULL-aware typing with
    operator-path diagnostics, and — when ``optimize_queries`` is on —
    :func:`~repro.static_analysis.check_rewrite` certifies the
    optimizer's output against its input, statically rejecting the PR-2
    class of NULL-unsound rewrites.  ``None`` (the default) resolves
    from the ``MAHIF_VERIFY_PLANS`` environment variable, which the
    test/fuzz harness sets to ``1`` so every suite run verifies every
    plan it builds; production calls default off.  Verification happens
    at plan-build time only — shared-plan cache hits reuse the already
    certified trees.

    ``profile`` turns every answer into an EXPLAIN ANALYZE run: each
    reenactment query is evaluated with per-operator wall time and row
    counts (:func:`repro.obs.profile.profile_query`), attached to the
    result as :attr:`MahifResult.profile`.  Profiled answers execute
    the serial unsharded path — per-node materialization is a
    diagnostic mode, not the hot path.  ``Mahif.answer(...,
    explain=True)`` requests the same per call.

    ``shards="auto"`` (stored as the ``AUTO_SHARDS`` = 0 sentinel; the
    literal ``0`` is accepted too) hands the decision to the cost-based
    planner (see DESIGN.md, "Adaptive planning"): each reenactment plan
    is priced from relation cardinalities, sampled routing selectivity
    and shardability, and executes sharded only when the model predicts
    a real win — ``shard_workers`` is then chosen by the planner as
    well.  The naive method ignores ``shards`` entirely (it replays
    statements, there is nothing to partition).
    """

    slicing_algorithm: str = "dependency"
    program_slicing: ProgramSlicingConfig = field(
        default_factory=ProgramSlicingConfig
    )
    optimize_queries: bool = True
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    backend: str = "compiled"
    batch_workers: int = 0
    batch_share_plans: bool = True
    shards: int | str = 1
    shard_workers: int = 0
    shard_scheme: str = "range"
    verify_plans: bool | None = None
    profile: bool = False

    def __post_init__(self) -> None:
        from ..relational.partition import PARTITION_SCHEMES

        if self.verify_plans is None:
            env = os.environ.get("MAHIF_VERIFY_PLANS", "").strip().lower()
            object.__setattr__(
                self, "verify_plans", env in ("1", "true", "on", "yes")
            )
        if self.slicing_algorithm not in ("dependency", "greedy"):
            raise ValueError(
                f"unknown slicing algorithm {self.slicing_algorithm!r}"
            )
        if self.batch_workers < 0:
            raise ValueError("batch_workers must be >= 0")
        if isinstance(self.shards, str):
            if self.shards.strip().lower() != "auto":
                raise ValueError(
                    f"shards must be >= 1, 'auto', or {AUTO_SHARDS} "
                    f"(auto sentinel); got {self.shards!r}"
                )
            object.__setattr__(self, "shards", AUTO_SHARDS)
        elif self.shards < AUTO_SHARDS:
            raise ValueError(
                "shards must be >= 1, or 'auto'/0 for planner-chosen"
            )
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        if self.shard_scheme not in PARTITION_SCHEMES:
            raise ValueError(
                f"unknown shard scheme {self.shard_scheme!r}; expected one "
                f"of {PARTITION_SCHEMES}"
            )
        resolve_backend(self.backend)  # raises ValueError when unknown

    @property
    def shards_auto(self) -> bool:
        """True when the adaptive planner chooses the shard count."""
        return self.shards == AUTO_SHARDS

    @property
    def may_shard(self) -> bool:
        """True when execution might shard (statically or via planner),
        i.e. routing conditions must be computed at planning time."""
        return self.shards == AUTO_SHARDS or self.shards > 1


@dataclass(frozen=True)
class MahifResult:
    """Answer plus the accounting the paper's figures report.

    ``ps_seconds`` is the program-slicing cost (Figure 16's "PS" column),
    ``exe_seconds`` everything else (reenactment + data slicing + delta,
    the "Exe" column).  ``slice_result`` and ``data_slicing`` expose what
    the optimizations did for inspection and the ablation benchmarks.
    """

    delta: DatabaseDelta
    method: Method
    ps_seconds: float = 0.0
    exe_seconds: float = 0.0
    slice_result: SliceResult | None = None
    data_slicing: DataSlicingConditions | None = None
    queries_original: Mapping[str, Operator] | None = None
    queries_modified: Mapping[str, Operator] | None = None
    naive_breakdown: NaiveResult | None = None
    #: The (time-travelled) database the reenactment queries ran over;
    #: needed to re-evaluate them, e.g. for provenance explanations.
    base_database: Database | None = None
    #: The adaptive planner's decision (``shards="auto"`` only): the
    #: shard/worker counts this answer actually executed with, plus the
    #: estimates it was based on.  ``None`` under static configuration.
    planner_choice: ExecutionChoice | None = None
    #: EXPLAIN ANALYZE output (``explain=True`` / ``config.profile``):
    #: per affected relation, ``{"original": OperatorProfile,
    #: "modified": OperatorProfile}`` — per-operator wall time and row
    #: counts for both reenactment queries.  ``None`` otherwise (and
    #: always for NAIVE, which replays statements instead of building
    #: operator trees).
    profile: Mapping[str, Mapping[str, object]] | None = None

    @property
    def total_seconds(self) -> float:
        return self.ps_seconds + self.exe_seconds


def _statement_share_key(stmt) -> tuple:
    """A hashable structural key for one statement, type-faithful.

    Dataclass equality compares ``Const(1) == Const(True)``, yet the two
    produce differently-typed rows — so, exactly like the plan cache's
    :func:`~repro.relational.exec.plan_compile.plan_fingerprint`, the
    key carries the types of every embedded constant alongside the
    statement structure.  Used by the batch path to detect queries whose
    sliced histories are interchangeable (see ``_plan_reenactment``).
    """
    from ..relational.exec.expr_compile import const_fingerprint
    from ..relational.exec.plan_compile import plan_fingerprint

    if isinstance(stmt, UpdateStatement):
        sets = tuple(sorted(stmt.set_clauses.items()))
        fingerprint = const_fingerprint(stmt.condition) + tuple(
            part for _, expr in sets for part in const_fingerprint(expr)
        )
        return ("U", stmt.relation, sets, stmt.condition, fingerprint)
    if isinstance(stmt, DeleteStatement):
        return (
            "D", stmt.relation, stmt.condition,
            const_fingerprint(stmt.condition),
        )
    if isinstance(stmt, InsertTuple):
        return (
            "I", stmt.relation, stmt.values,
            tuple(type(v).__name__ for v in stmt.values),
        )
    if isinstance(stmt, InsertQuery):
        return ("IQ", stmt.relation, stmt.query, plan_fingerprint(stmt.query))
    return ("?", stmt)


@dataclass(frozen=True)
class _ReenactmentPlan:
    """Everything ``_plan_reenactment`` produces ahead of evaluation.

    ``build_seconds`` is the reenactment-query construction cost (tree
    building + data slicing + optimization) — near zero on a shared-plan
    cache hit; evaluation adds its own time on top to form the reported
    ``exe_seconds``.
    """

    query: HistoricalWhatIfQuery
    method: Method
    start_db: Database
    affected: frozenset[str]
    queries_h: Mapping[str, Operator]
    queries_m: Mapping[str, Operator]
    inserted_original: Database | None
    inserted_modified: Database | None
    slice_result: SliceResult | None
    data_slicing: DataSlicingConditions | None
    #: Skip-routing conditions for sharded execution: equals
    #: ``data_slicing`` for DS methods, and is computed (but never
    #: injected into the queries) for the others when ``shards`` > 1.
    routing: DataSlicingConditions | None
    ps_seconds: float
    build_seconds: float


def _relation_delta_task(
    backend: str | None,
    query_h: Operator,
    query_m: Operator,
    start_db: Database,
    extra_original: Relation | None,
    extra_modified: Relation | None,
) -> tuple[RelationDelta, float]:
    """Evaluate one (query, relation) delta; module-level so the batch
    path can ship it to process-pool workers (the operator trees and
    databases it receives all pickle; workers compile into their own
    plan caches)."""
    t0 = time.perf_counter()
    result_h = evaluate_query(query_h, start_db, backend=backend)
    result_m = evaluate_query(query_m, start_db, backend=backend)
    if extra_original is not None:
        result_h = result_h.union(extra_original)
    if extra_modified is not None:
        result_m = result_m.union(extra_modified)
    return RelationDelta.between(result_h, result_m), time.perf_counter() - t0


def _affected_relations(aligned: AlignedHistories) -> set[str]:
    """Relations whose contents can differ between H and H[M]: targets of
    modified statements, closed under INSERT ... SELECT dataflow."""
    affected = aligned.target_relations_of_modifications()
    statements = tuple(aligned.original.statements) + tuple(
        aligned.modified.statements
    )
    changed = True
    while changed:
        changed = False
        for stmt in statements:
            if isinstance(stmt, InsertQuery):
                sources = base_relations(stmt.query)
                if sources & affected and stmt.relation not in affected:
                    affected.add(stmt.relation)
                    changed = True
    return affected


class Mahif:
    """Facade for answering historical what-if queries.

    >>> engine = Mahif()
    >>> result = engine.answer(query, Method.R_PS_DS)
    >>> print(result.delta.pretty())
    """

    def __init__(self, config: MahifConfig | None = None) -> None:
        self.config = config or MahifConfig()
        #: Lazily-created worker pool for sharded single answers
        #: (``shards`` > 1 and ``shard_workers`` > 1), reused across
        #: calls — pool startup would otherwise dominate the small
        #: per-query work sharding targets.  Shut down when the engine
        #: is collected (or on a task failure, which may poison a
        #: process pool).
        self._shard_executor = None
        self._shard_pool_lock = threading.Lock()

    def _shard_pool(self, config: MahifConfig | None = None):
        config = config or self.config
        if config.shards <= 1 or config.shard_workers <= 1:
            return None
        with self._shard_pool_lock:
            if self._shard_executor is None:
                from .batch import _make_executor

                executor = _make_executor(
                    resolve_backend(config.backend),
                    config.shard_workers,
                )
                if executor is not None:
                    weakref.finalize(
                        self, executor.shutdown,
                        wait=False, cancel_futures=True,
                    )
                self._shard_executor = executor
            return self._shard_executor

    def _reset_shard_pool(self) -> None:
        with self._shard_pool_lock:
            executor, self._shard_executor = self._shard_executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- public API --------------------------------------------------------
    def answer(
        self,
        query: HistoricalWhatIfQuery,
        method: Method = Method.R_PS_DS,
        current_state: Database | None = None,
        *,
        explain: bool = False,
    ) -> MahifResult:
        """Answer a HWQ with the selected method.

        The configured execution backend is scoped around the whole
        pipeline, so statement replay (naive), reenactment queries and
        the delta all run through it.

        ``explain=True`` (or ``config.profile``) runs EXPLAIN ANALYZE:
        the answer carries a per-operator time/row-count
        :attr:`MahifResult.profile` and executes the serial unsharded
        path.  NAIVE has no operator trees to profile and returns
        ``profile=None``.
        """
        profiled = explain or self.config.profile
        with use_backend(self.config.backend):
            if method is Method.NAIVE:
                naive = naive_what_if(query, current_state=current_state)
                return MahifResult(
                    delta=naive.delta,
                    method=method,
                    exe_seconds=naive.total_seconds,
                    naive_breakdown=naive,
                )
            return self._answer_reenactment(
                query, method, profiled=profiled
            )

    def answer_batch(
        self,
        queries: Sequence[HistoricalWhatIfQuery],
        method: Method = Method.R_PS_DS,
        *,
        workers: int | None = None,
        start_databases: Sequence[Database] | None = None,
        explain: bool = False,
    ) -> list[MahifResult]:
        """Answer several HWQs over a shared history in one call.

        Produces exactly the deltas of ``[self.answer(q, method) for q in
        queries]`` (in input order) while amortizing the common
        structure across the batch (see DESIGN.md, "Batched answering"):

        * each distinct ``(database, history-prefix)`` version is
          time-travelled to once, reusing the deepest shared prefix
          already materialized,
        * queries that slice to the same statement set share their
          reenactment operator trees, data-slicing conditions and
          optimized plans (``config.batch_share_plans``),
        * per-(query, relation) delta evaluations fan out over a worker
          pool when ``workers``/``config.batch_workers`` > 1 — a process
          pool for the in-process backends, a thread pool for sqlite.

        ``start_databases`` optionally injects each query's
        time-travelled start version (the what-if service supplies
        checkpoint-reconstructed states from its history store instead
        of replaying prefixes here).

        With a pool, each result's ``exe_seconds`` is the summed worker
        time of its relation evaluations (CPU cost, not wall clock).
        """
        from .batch import answer_batch_with

        with use_backend(self.config.backend):
            return answer_batch_with(
                self, list(queries), method, workers, start_databases,
                explain=explain or self.config.profile,
            )

    # -- reenactment pipeline ----------------------------------------------
    def _answer_reenactment(
        self,
        query: HistoricalWhatIfQuery,
        method: Method,
        *,
        profiled: bool = False,
    ) -> MahifResult:
        with trace.span("plan", method=method.value) as plan_span:
            plan = self._plan_reenactment(query, method)
            plan_span.set_attributes(
                {
                    "affected": len(plan.affected),
                    "ps_seconds": plan.ps_seconds,
                    "build_seconds": plan.build_seconds,
                }
            )
        t0 = time.perf_counter()
        deltas: dict[str, RelationDelta] = {}
        profiles: dict[str, dict] | None = None
        choice: ExecutionChoice | None = None
        effective = self.config
        hints = None
        if profiled:
            # EXPLAIN ANALYZE: per-operator instrumentation on the
            # serial unsharded path (the per-node materialization makes
            # timings meaningful; sharded/planned execution would
            # profile partitions, not the plan the user asked about).
            profiles = self._evaluate_profiled(plan, deltas)
        else:
            if self.config.shards_auto:
                from dataclasses import replace

                from .planner import plan_execution

                choice = plan_execution(
                    plan, self.config,
                    backend=resolve_backend(self.config.backend),
                )
                hints = choice.estimates
                effective = replace(
                    self.config,
                    shards=choice.shards,
                    shard_workers=choice.shard_workers,
                )
            if effective.shards > 1:
                from .shard import evaluate_plan_sharded

                try:
                    deltas, _ = evaluate_plan_sharded(
                        plan,
                        effective,
                        resolve_backend(effective.backend),
                        executor=self._shard_pool(effective),
                        hints=hints,
                    )
                except BaseException:
                    # A failed task may have poisoned a process pool;
                    # build a fresh one on the next call.
                    self._reset_shard_pool()
                    raise
            else:
                with trace.span("execute", mode="serial") as exec_span:
                    for relation in sorted(plan.affected):
                        deltas[relation], seconds = _relation_delta_task(
                            None,  # ambient backend: `answer` scoped it
                            plan.queries_h[relation],
                            plan.queries_m[relation],
                            plan.start_db,
                            plan.inserted_original[relation]
                            if plan.inserted_original is not None
                            else None,
                            plan.inserted_modified[relation]
                            if plan.inserted_modified is not None
                            else None,
                        )
                        trace.record_span(
                            "relation", seconds, relation=relation
                        )
                    exec_span.set_attribute(
                        "relations", len(plan.affected)
                    )
        exe_seconds = plan.build_seconds + (time.perf_counter() - t0)
        return MahifResult(
            delta=DatabaseDelta(deltas),
            method=method,
            ps_seconds=plan.ps_seconds,
            exe_seconds=exe_seconds,
            slice_result=plan.slice_result,
            data_slicing=plan.data_slicing,
            queries_original=plan.queries_h,
            queries_modified=plan.queries_m,
            base_database=plan.start_db,
            planner_choice=choice,
            profile=profiles,
        )

    def _evaluate_profiled(
        self, plan: "_ReenactmentPlan", deltas: dict[str, RelationDelta]
    ) -> dict[str, dict]:
        """EXPLAIN ANALYZE evaluation: per-operator profiles for both
        reenactment queries of every affected relation, deltas computed
        from the profiled results (equal to plain evaluation — the
        profiler materializes bottom-up through the same backends)."""
        from ..obs.profile import profile_query

        profiles: dict[str, dict] = {}
        with trace.span("execute", mode="profiled") as exec_span:
            for relation in sorted(plan.affected):
                t0 = time.perf_counter()
                result_h, prof_h = profile_query(
                    plan.queries_h[relation], plan.start_db
                )
                result_m, prof_m = profile_query(
                    plan.queries_m[relation], plan.start_db
                )
                if plan.inserted_original is not None:
                    result_h = result_h.union(
                        plan.inserted_original[relation]
                    )
                if plan.inserted_modified is not None:
                    result_m = result_m.union(
                        plan.inserted_modified[relation]
                    )
                deltas[relation] = RelationDelta.between(result_h, result_m)
                profiles[relation] = {
                    "original": prof_h,
                    "modified": prof_m,
                }
                trace.record_span(
                    "relation",
                    time.perf_counter() - t0,
                    relation=relation,
                    profiled=True,
                )
            exec_span.set_attribute("relations", len(plan.affected))
        return profiles

    def _plan_reenactment(
        self,
        query: HistoricalWhatIfQuery,
        method: Method,
        *,
        start_db: Database | None = None,
        shared: dict | None = None,
    ) -> _ReenactmentPlan:
        """Run the pipeline up to (but not including) delta evaluation.

        ``start_db`` lets the batch path inject a pre-computed
        time-travel version; ``shared`` is the batch's keyed plan cache
        — one level above the per-process compiled-plan cache in
        :mod:`repro.relational.exec.plan_compile` — mapping the sliced
        statement pair (plus schemas, method and insert-split context)
        to finished ``(queries_h, queries_m, data_slicing)`` triples.
        """
        aligned = query.aligned()
        trimmed, prefix_length = aligned.trim_prefix()
        if start_db is None:
            # Time travel: the state before the first modified statement.
            start_db = query.history.prefix(prefix_length).execute(
                query.database
            )
        schemas = {
            name: start_db.schema_of(name) for name in start_db.relations
        }
        affected = _affected_relations(trimmed)

        pair = trimmed
        inserted_original: Database | None = None
        inserted_modified: Database | None = None
        slice_result: SliceResult | None = None
        ps_seconds = 0.0

        if method.uses_program_slicing:
            has_inserts = any(
                isinstance(s, InsertTuple)
                for s in tuple(pair.original.statements)
                + tuple(pair.modified.statements)
            )
            splittable = can_split(pair)
            if splittable and has_inserts:
                split = split_inserts(pair, schemas)
                pair = split.without_inserts
                inserted_original = split.inserted_original
                inserted_modified = split.inserted_modified
            if splittable:
                t0 = time.perf_counter()
                if self.config.slicing_algorithm == "greedy":
                    slice_result = greedy_slice(
                        pair, start_db, schemas, self.config.program_slicing
                    )
                else:
                    slice_result = dependency_slice(
                        pair, start_db, schemas, self.config.program_slicing
                    )
                ps_seconds = time.perf_counter() - t0
                pair = pair.subset(slice_result.kept_positions)
            # else: INSERT ... SELECT present — program slicing is not
            # applicable (Section 10 limits it to update/delete parts);
            # proceed with plain reenactment, optionally data-sliced.

        t1 = time.perf_counter()
        # Sharded execution needs the slicing conditions for skip routing
        # even when the method does not inject them into the queries —
        # including ``shards="auto"``, where the planner also samples
        # them for selectivity before any shard exists.
        needs_conditions = (
            method.uses_data_slicing or self.config.may_shard
        )
        insert_mod_relations: set[str] = set()
        if needs_conditions:
            insert_mod_relations = {
                trimmed.original[p].relation
                for p in trimmed.modified_positions
                if isinstance(trimmed.original[p], InsertTuple)
                or isinstance(trimmed.modified[p], InsertTuple)
            }

        share_key = None
        cached = None
        if shared is not None:
            try:
                share_key = (
                    method,
                    tuple(
                        _statement_share_key(s)
                        for s in pair.original.statements
                    ),
                    tuple(
                        _statement_share_key(s)
                        for s in pair.modified.statements
                    ),
                    tuple(sorted(schemas.items())),
                    frozenset(insert_mod_relations),
                    inserted_original is not None,
                    inserted_modified is not None,
                )
                cached = shared.get(share_key)
            except TypeError:  # unhashable constant inside a statement
                share_key = None

        if cached is not None:
            queries_h, queries_m, data_slicing, routing = cached
        else:
            queries_h = reenactment_queries(pair.original, schemas)
            queries_m = reenactment_queries(pair.modified, schemas)

            data_slicing = None
            routing = None
            if needs_conditions:
                conditions = compute_data_slicing(pair, schemas)
                # Modified inserts: after the Section-10 split the pair no
                # longer carries the insert, so the collision disjunct that
                # compute_data_slicing derives for insert modifications (see
                # data_slicing._affected_condition_map) is lost.  Filtering
                # such a relation could then drop a base tuple that one
                # side's replayed insert re-adds — and shard routing could
                # likewise skip a shard holding such a tuple; disable
                # filtering/skipping for those relations instead (their
                # insert-side delta is tiny anyway).
                from ..relational.expressions import TRUE

                if insert_mod_relations and (
                    inserted_original is not None
                    or inserted_modified is not None
                ):
                    conditions = DataSlicingConditions(
                        {
                            rel: (
                                TRUE
                                if rel in insert_mod_relations
                                else cond
                            )
                            for rel, cond in conditions.for_original.items()
                        }
                        | {
                            rel: TRUE
                            for rel in insert_mod_relations
                            if rel not in conditions.for_original
                        },
                        {
                            rel: (
                                TRUE
                                if rel in insert_mod_relations
                                else cond
                            )
                            for rel, cond in conditions.for_modified.items()
                        }
                        | {
                            rel: TRUE
                            for rel in insert_mod_relations
                            if rel not in conditions.for_modified
                        },
                    )
                if self.config.may_shard:
                    routing = conditions
                if method.uses_data_slicing:
                    data_slicing = conditions
                    queries_h = {
                        name: inject_selection(
                            op, dict(data_slicing.for_original)
                        )
                        for name, op in queries_h.items()
                    }
                    queries_m = {
                        name: inject_selection(
                            op, dict(data_slicing.for_modified)
                        )
                        for name, op in queries_m.items()
                    }

            pre_opt_h: Mapping[str, Operator] | None = None
            pre_opt_m: Mapping[str, Operator] | None = None
            if self.config.optimize_queries:
                pre_opt_h, pre_opt_m = queries_h, queries_m
                queries_h = {
                    name: optimize(op, self.config.optimizer)
                    for name, op in queries_h.items()
                }
                queries_m = {
                    name: optimize(op, self.config.optimizer)
                    for name, op in queries_m.items()
                }

            if self.config.verify_plans:
                # Static soundness layer (DESIGN.md, "Static analysis"):
                # every freshly built plan is schema/type-verified, and
                # the optimizer's rewrite is certified NULL-sound against
                # the unoptimized tree.  Cache hits skip this — the
                # cached trees were certified when first built.
                from ..static_analysis import verify_reenactment_plans

                with trace.span("verify", plans=len(queries_h)):
                    verify_reenactment_plans(
                        schemas,
                        queries_h,
                        queries_m,
                        before_original=pre_opt_h,
                        before_modified=pre_opt_m,
                    )

            if share_key is not None:
                shared[share_key] = (
                    queries_h, queries_m, data_slicing, routing
                )

        return _ReenactmentPlan(
            query=query,
            method=method,
            start_db=start_db,
            affected=frozenset(affected),
            queries_h=queries_h,
            queries_m=queries_m,
            inserted_original=inserted_original,
            inserted_modified=inserted_modified,
            slice_result=slice_result,
            data_slicing=data_slicing,
            routing=routing,
            ps_seconds=ps_seconds,
            build_seconds=time.perf_counter() - t1,
        )


def answer(
    query: HistoricalWhatIfQuery,
    method: Method = Method.R_PS_DS,
    config: MahifConfig | None = None,
) -> MahifResult:
    """Module-level convenience wrapper around :class:`Mahif`."""
    return Mahif(config).answer(query, method)


def answer_batch(
    queries: Sequence[HistoricalWhatIfQuery],
    method: Method = Method.R_PS_DS,
    config: MahifConfig | None = None,
) -> list[MahifResult]:
    """Module-level convenience wrapper around :meth:`Mahif.answer_batch`."""
    return Mahif(config).answer_batch(queries, method)
