"""Why-provenance for reenactment queries.

Reenactment was originally built to capture the provenance of
transactional workloads (the paper's Section 12 situates Mahif in that
line of work).  This module recovers that capability for the in-memory
engine: evaluating a query with :func:`evaluate_with_provenance` annotates
every output tuple with its *witness set* — the base-relation tuples it
derives from — and :func:`explain_delta` uses it to answer the natural
follow-up to a what-if query: *which original rows caused this change?*

Semantics (why-provenance over set semantics):

* scan: each tuple's witness is itself,
* projection/selection: witnesses pass through,
* union: witnesses of all sources producing the tuple are unioned,
* join: the union of the two sides' witnesses,
* difference: the left side's witnesses (the minimal-why convention),
* singleton: the empty witness set (the tuple is query-generated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..relational.algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from ..relational.database import Database
from ..relational.expressions import evaluate
from ..relational.schema import Schema
from .delta import DatabaseDelta
from .engine import MahifResult

__all__ = [
    "SourceTuple",
    "AnnotatedRelation",
    "evaluate_with_provenance",
    "explain_delta",
]


@dataclass(frozen=True)
class SourceTuple:
    """A base-relation tuple acting as a provenance witness."""

    relation: str
    row: tuple[Any, ...]


@dataclass(frozen=True)
class AnnotatedRelation:
    """Query result where each tuple maps to its witness set."""

    schema: Schema
    annotations: Mapping[tuple[Any, ...], frozenset[SourceTuple]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "annotations", dict(self.annotations))

    def rows(self) -> set[tuple[Any, ...]]:
        return set(self.annotations)

    def witnesses_of(self, row: tuple[Any, ...]) -> frozenset[SourceTuple]:
        return self.annotations.get(tuple(row), frozenset())


def _merge(
    into: dict[tuple[Any, ...], set[SourceTuple]],
    row: tuple[Any, ...],
    witnesses: frozenset[SourceTuple] | set[SourceTuple],
) -> None:
    into.setdefault(row, set()).update(witnesses)


def evaluate_with_provenance(
    op: Operator, db: Database
) -> AnnotatedRelation:
    """Evaluate an operator tree, tracking why-provenance."""
    if isinstance(op, RelScan):
        relation = db[op.name]
        return AnnotatedRelation(
            relation.schema,
            {
                t: frozenset({SourceTuple(op.name, t)})
                for t in relation
            },
        )
    if isinstance(op, Singleton):
        return AnnotatedRelation(op.schema, {op.row: frozenset()})
    if isinstance(op, Select):
        child = evaluate_with_provenance(op.input, db)
        kept = {
            row: witnesses
            for row, witnesses in child.annotations.items()
            if bool(evaluate(op.condition, child.schema.as_dict(row)))
        }
        return AnnotatedRelation(child.schema, kept)
    if isinstance(op, Project):
        child = evaluate_with_provenance(op.input, db)
        out_schema = Schema(tuple(name for _, name in op.outputs))
        merged: dict[tuple[Any, ...], set[SourceTuple]] = {}
        for row, witnesses in child.annotations.items():
            binding = child.schema.as_dict(row)
            out_row = tuple(
                evaluate(expr, binding) for expr, _ in op.outputs
            )
            _merge(merged, out_row, witnesses)
        return AnnotatedRelation(
            out_schema,
            {r: frozenset(w) for r, w in merged.items()},
        )
    if isinstance(op, Union):
        left = evaluate_with_provenance(op.left, db)
        right = evaluate_with_provenance(op.right, db)
        merged = {r: set(w) for r, w in left.annotations.items()}
        for row, witnesses in right.annotations.items():
            _merge(merged, row, witnesses)
        return AnnotatedRelation(
            left.schema, {r: frozenset(w) for r, w in merged.items()}
        )
    if isinstance(op, Difference):
        left = evaluate_with_provenance(op.left, db)
        right = evaluate_with_provenance(op.right, db)
        kept = {
            row: witnesses
            for row, witnesses in left.annotations.items()
            if row not in right.annotations
        }
        return AnnotatedRelation(left.schema, kept)
    if isinstance(op, Join):
        left = evaluate_with_provenance(op.left, db)
        right = evaluate_with_provenance(op.right, db)
        schema = left.schema.concat(right.schema)
        merged = {}
        for lrow, lwit in left.annotations.items():
            binding = left.schema.as_dict(lrow)
            for rrow, rwit in right.annotations.items():
                full = dict(binding)
                full.update(right.schema.as_dict(rrow))
                if bool(evaluate(op.condition, full)):
                    _merge(merged, lrow + rrow, lwit | rwit)
        return AnnotatedRelation(
            schema, {r: frozenset(w) for r, w in merged.items()}
        )
    raise TypeError(f"cannot trace provenance through {op!r}")


def explain_delta(
    result: MahifResult,
    relation: str,
    database: Database | None = None,
) -> dict[tuple[Any, ...], frozenset[SourceTuple]]:
    """Explain every delta tuple of ``relation``: map it to the base
    tuples it derives from in whichever history produced it.

    ``result`` must come from a reenactment method (``R``/``R+DS``/...),
    whose queries — and the time-travelled database they were evaluated
    over — are exposed on the result object.
    """
    if result.queries_original is None or result.queries_modified is None:
        raise ValueError(
            "explain_delta needs a reenactment result (not NAIVE)"
        )
    if database is None:
        database = result.base_database
    if database is None:
        raise ValueError("no base database available on the result")
    delta = result.delta.relations.get(relation)
    if delta is None:
        return {}
    annotated_original = evaluate_with_provenance(
        result.queries_original[relation], database
    )
    annotated_modified = evaluate_with_provenance(
        result.queries_modified[relation], database
    )
    explanation: dict[tuple[Any, ...], frozenset[SourceTuple]] = {}
    for row in delta.removed:
        explanation[row] = annotated_original.witnesses_of(row)
    for row in delta.added:
        explanation[row] = annotated_modified.witnesses_of(row)
    return explanation
