"""Data slicing (Section 6): filter data irrelevant to the HWQ.

Any tuple in ``Δ(H(D), H[M](D))`` must derive from an input tuple affected
by at least one statement modified by ``M``.  For every modification we
build the per-relation condition describing "affected by ``u`` or ``u'``"
(Equations 7/8 and the insert-query rule), *push it down* through the
statements preceding the modification (substituting attributes with the
conditional update expressions, Figure 9), and take the disjunction over
all modifications.  The resulting conditions are injected as selections
over the base relations of the reenactment queries.

Soundness (Theorem 2) relies on histories being key-preserving: under pure
set semantics an update can merge two tuples and filtering may then perturb
the delta; every workload in the paper (and in :mod:`repro.workloads`)
carries an immutable key, which rules this out.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..relational.algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    base_relations,
    output_schema,
)
from ..relational.expressions import (
    Attr,
    Expr,
    FALSE,
    If,
    TRUE,
    and_,
    attributes_of,
    conjuncts_of,
    expr_size,
    or_,
    simplify,
    substitute_attributes,
)
from ..relational.schema import Schema
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)
from .hwq import AlignedHistories

__all__ = [
    "DataSlicingConditions",
    "compute_data_slicing",
    "push_condition_through_query",
    "slicing_selectivity",
]


@dataclass(frozen=True)
class DataSlicingConditions:
    """Per-relation slicing conditions for the two reenactment queries.

    A relation absent from a mapping has condition FALSE: no tuple of it
    can contribute to the delta, and the engine skips its delta entirely.
    ``condition_size`` is the total expression size (the pushdown cost the
    paper discusses for late modifications — Figure 17/20 territory).
    """

    for_original: Mapping[str, Expr]
    for_modified: Mapping[str, Expr]

    def __post_init__(self) -> None:
        object.__setattr__(self, "for_original", dict(self.for_original))
        object.__setattr__(self, "for_modified", dict(self.for_modified))

    def affected_relations(self) -> set[str]:
        return set(self.for_original) | set(self.for_modified)

    def condition_size(self) -> int:
        return sum(
            expr_size(c) for c in self.for_original.values()
        ) + sum(expr_size(c) for c in self.for_modified.values())


def _affected_condition_map(
    stmt: Statement, schemas: Mapping[str, Schema]
) -> dict[str, Expr]:
    """Per-relation condition describing the input tuples a statement can
    affect.

    Updates/deletes affect the tuples matching their condition.  A
    constant insert affects no existing tuple, but under set semantics its
    tuple can *collide* with a base tuple — when the insert is on only one
    side of a modification, filtering that base tuple away would let the
    insert re-add it on one side only, corrupting the delta.  The insert
    therefore admits tuples equal to its inserted value.  Inserts with
    queries affect the source tuples that can contribute to the query,
    obtained by pushing the query's selections down to its base relations
    (the "selection move-around" of Section 6).
    """
    if isinstance(stmt, (UpdateStatement, DeleteStatement)):
        return {stmt.relation: stmt.condition}
    if isinstance(stmt, InsertTuple):
        from ..relational.expressions import Attr, IsNull, eq

        schema = schemas.get(stmt.relation)
        if schema is None:
            return {stmt.relation: TRUE}
        equalities: list[Expr] = []
        for attribute, value in zip(schema, stmt.values):
            if value is None:
                equalities.append(IsNull(Attr(attribute)))
            else:
                equalities.append(eq(Attr(attribute), value))
        return {stmt.relation: and_(*equalities)}
    if isinstance(stmt, InsertQuery):
        result: dict[str, Expr] = {}
        for source in base_relations(stmt.query):
            pushed = push_condition_through_query(
                TRUE, source, stmt.query, schemas
            )
            if pushed is not None:
                result[source] = or_(result.get(source, FALSE), pushed)
        return result
    raise TypeError(f"unknown statement {stmt!r}")


def _merge_or(
    left: dict[str, Expr], right: dict[str, Expr]
) -> dict[str, Expr]:
    """Pointwise disjunction of per-relation condition maps (missing keys
    are FALSE)."""
    merged = dict(left)
    for relation, condition in right.items():
        if relation in merged:
            merged[relation] = or_(merged[relation], condition)
        else:
            merged[relation] = condition
    return merged


def _base_conditions(
    u: Statement, u_prime: Statement, schemas: Mapping[str, Schema]
) -> tuple[dict[str, Expr], dict[str, Expr]]:
    """The slicing conditions at the modification's own position.

    Returns ``(theta^DS_H, theta^DS_H[M])`` as per-relation maps:

    * update/update: ``theta_u or theta_u'`` on both sides (Eq. 7),
    * delete/delete: ``theta_u'`` for H and ``theta_u`` for H[M] — the
      simplified form derived in Section 6 ("survivors" argument, Eq. 8),
    * any other pairing: the conservative disjunction of each statement's
      affected-condition map.
    """
    if isinstance(u, DeleteStatement) and isinstance(u_prime, DeleteStatement):
        if u.relation == u_prime.relation:
            return (
                {u.relation: u_prime.condition},
                {u.relation: u.condition},
            )
    combined = _merge_or(
        _affected_condition_map(u, schemas),
        _affected_condition_map(u_prime, schemas),
    )
    return dict(combined), dict(combined)


def _push_through_statement(
    conditions: dict[str, Expr],
    stmt: Statement,
    schemas: Mapping[str, Schema],
) -> dict[str, Expr]:
    """One pushdown step ``theta ↓_{j+1}`` of Figure 9 (applied in reverse
    history order by the caller)."""
    target = stmt.relation
    current = conditions.get(target)

    if isinstance(stmt, UpdateStatement):
        if current is None:
            return conditions
        substitution = {
            attribute: If(stmt.condition, expr, Attr(attribute))
            for attribute, expr in stmt.set_clauses.items()
        }
        updated = dict(conditions)
        updated[target] = substitute_attributes(current, substitution)
        return updated

    if isinstance(stmt, (DeleteStatement, InsertTuple)):
        # "otherwise" case of Figure 9: the condition is unchanged.  (For
        # deletes this is conservative: deleted tuples simply fail to
        # produce output.  For I_t the inserted tuple is handled by the
        # singleton branch, not the base-relation filter.)
        return conditions

    if isinstance(stmt, InsertQuery):
        if current is None:
            return conditions
        updated = dict(conditions)
        for source in base_relations(stmt.query):
            pushed = push_condition_through_query(
                current, source, stmt.query, schemas
            )
            if pushed is not None:
                updated[source] = or_(updated.get(source, FALSE), pushed)
        return updated

    raise TypeError(f"unknown statement {stmt!r}")


def push_condition_through_query(
    condition: Expr,
    relation: str,
    query: Operator,
    schemas: Mapping[str, Schema],
) -> Expr | None:
    """``(theta)[relation] ↓ query``: the condition over ``relation``'s
    tuples that admits every tuple contributing to a query result tuple
    satisfying ``theta``.

    Returns ``None`` when ``relation`` cannot contribute at all through
    this query (the identity of the disjunctive accumulation), and the
    conservative ``TRUE`` whenever a construct blocks precise pushdown.
    """
    if isinstance(query, RelScan):
        return condition if query.name == relation else None
    if isinstance(query, Singleton):
        return None
    if isinstance(query, Select):
        return push_condition_through_query(
            and_(condition, query.condition), relation, query.input, schemas
        )
    if isinstance(query, Project):
        substitution = {name: expr for expr, name in query.outputs}
        rewritten = substitute_attributes(condition, substitution)
        return push_condition_through_query(
            rewritten, relation, query.input, schemas
        )
    if isinstance(query, Union):
        try:
            left_schema = output_schema(query.left, dict(schemas))
            right_schema = output_schema(query.right, dict(schemas))
        # repro-lint: allow[broad-swallow] -- unknowable schema weakens the condition to TRUE, sound
        except Exception:
            return TRUE if relation in base_relations(query) else None
        left = push_condition_through_query(
            condition, relation, query.left, schemas
        )
        renamed = substitute_attributes(
            condition,
            {
                old: Attr(new)
                for old, new in zip(
                    left_schema.attributes, right_schema.attributes
                )
                if old != new
            },
        )
        right = push_condition_through_query(
            renamed, relation, query.right, schemas
        )
        if left is None:
            return right
        if right is None:
            return left
        return or_(left, right)
    if isinstance(query, Join):
        # Keep only the conjuncts that mention attributes owned by the
        # side containing the relation; dropping the others weakens the
        # condition (keeps more tuples), which is sound.
        for side in (query.left, query.right):
            if relation not in base_relations(side):
                continue
            try:
                side_schema = output_schema(side, dict(schemas))
            # repro-lint: allow[broad-swallow] -- unknowable schema weakens the condition to TRUE, sound
            except Exception:
                return TRUE
            side_attributes = set(side_schema.attributes)
            kept = [
                conjunct
                for conjunct in conjuncts_of(
                    and_(condition, query.condition)
                )
                if attributes_of(conjunct) <= side_attributes
            ]
            pushable = and_(*kept) if kept else TRUE
            return push_condition_through_query(
                pushable, relation, side, schemas
            )
        return None
    if isinstance(query, Difference):
        # Precise pushdown through difference is not derivable; fall back.
        return TRUE if relation in base_relations(query) else None
    raise TypeError(f"unknown operator {query!r}")


def slicing_selectivity(
    conditions: Mapping[str, Expr],
    db,
    backend: str | None = None,
) -> dict[str, tuple[int, int]]:
    """Measure what a per-relation condition map actually filters.

    Returns ``{relation: (kept_rows, total_rows)}`` over the base
    relations of ``db`` — the observable effect of Theorem 2's
    ``σ_{∨ theta(m_i)↓*}`` selections, reported by the backend benchmark
    and useful when judging whether slicing pays off on a workload.
    Conditions are evaluated through the selected execution backend
    (compiled row closures by default).
    """
    from ..relational.exec import compile_predicate
    from ..relational.exec.backend import BACKEND_COMPILED, resolve_backend
    from ..relational.expressions import evaluate

    compiled = resolve_backend(backend) == BACKEND_COMPILED
    result: dict[str, tuple[int, int]] = {}
    for relation_name, condition in conditions.items():
        if relation_name not in db:
            continue
        relation = db[relation_name]
        total = len(relation.tuples)
        if compiled:
            predicate = compile_predicate(condition, relation.schema)
            kept = sum(1 for row in relation.tuples if predicate(row))
        else:
            kept = sum(
                1
                for row in relation.tuples
                if bool(evaluate(condition, relation.schema.as_dict(row)))
            )
        result[relation_name] = (kept, total)
    return result


def compute_data_slicing(
    aligned: AlignedHistories, schemas: Mapping[str, Schema]
) -> DataSlicingConditions:
    """Compute the data-slicing conditions for a (trimmed) aligned pair.

    For each modification at position ``i`` the base condition is pushed
    down through statements ``i-1 .. 1`` of the respective history; the
    final condition per relation is the disjunction over all modifications
    (Theorem 2's ``σ_{∨ theta(m_i)↓*}``), simplified.
    """
    final_original: dict[str, Expr] = {}
    final_modified: dict[str, Expr] = {}

    for position in aligned.modified_positions:
        u = aligned.original[position]
        u_prime = aligned.modified[position]
        base_h, base_m = _base_conditions(u, u_prime, schemas)

        for j in range(position - 1, 0, -1):
            base_h = _push_through_statement(
                base_h, aligned.original[j], schemas
            )
            base_m = _push_through_statement(
                base_m, aligned.modified[j], schemas
            )

        final_original = _merge_or(final_original, base_h)
        final_modified = _merge_or(final_modified, base_m)

    final_original = {
        relation: simplify(condition)
        for relation, condition in final_original.items()
    }
    final_modified = {
        relation: simplify(condition)
        for relation, condition in final_modified.items()
    }
    return DataSlicingConditions(final_original, final_modified)
