"""Program slicing (Sections 7 and 8): exclude irrelevant statements.

A slice ``(H_I, H[M]_I)`` may replace the full histories when answering a
HWQ (Definition 4).  Because testing sliceness exactly is as expensive as
answering the query, the paper restricts itself to tuple-independent
statements and checks — per input tuple, symbolically — that the sliced
and full histories produce the same delta (Equation 16).  The check runs
the four histories (H, H[M], H_I, H[M]_I) over a shared single-tuple
VC-instance constrained by the compressed database Φ_D, builds the slicing
condition ζ (Equation 18 with the per-pair equality of Equation 19), and
asks the MILP solver whether ¬ζ is satisfiable; UNSAT proves the slice
(Theorem 4).

The greedy algorithm (Section 8.3.3) starts from the full index set and
tries to drop one statement at a time, keeping the drop whenever the
solver proves the smaller set is still a slice.  UNKNOWN solver outcomes
(node limit, unsupported expressions) conservatively keep the statement.

Histories must contain only updates and deletes: the engine peels constant
inserts away first (Section 10, :mod:`repro.core.insert_split`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..relational.database import Database
from ..relational.expressions import (
    Expr,
    Not,
    TRUE,
    and_,
    eq,
    or_,
    simplify,
)
from ..relational.history import History
from ..relational.schema import Schema
from ..solver.sat import SatResult, SolverConfig, check_satisfiable
from ..symbolic.compress import CompressionConfig, compress_relation
from ..symbolic.symexec import (
    SingleTupleRun,
    prune_defining_conjuncts,
    run_history_single_tuple,
)
from ..symbolic.vctable import SymbolicTuple
from .hwq import AlignedHistories

__all__ = [
    "ProgramSlicingConfig",
    "SliceResult",
    "histories_equal_condition",
    "slicing_condition",
    "is_slice",
    "greedy_slice",
]


@dataclass(frozen=True)
class ProgramSlicingConfig:
    """Tunables for program slicing.

    ``compression`` controls Φ_D; ``solver`` the MILP backend;
    ``skip_modified_positions`` avoids wasting solver calls trying to drop
    the modified statements themselves (dropping them almost never yields
    a valid slice, and the check would reject it anyway).
    """

    compression: CompressionConfig = field(default_factory=CompressionConfig)
    solver: SolverConfig = field(default_factory=SolverConfig)
    skip_modified_positions: bool = True


@dataclass(frozen=True)
class SliceResult:
    """Outcome of slicing: the kept (1-based, aligned) positions plus
    accounting used by the benchmarks (PS time is reported separately in
    the paper's Figure 16)."""

    kept_positions: tuple[int, ...]
    total_positions: int
    solver_calls: int
    solver_seconds: float

    @property
    def excluded_count(self) -> int:
        return self.total_positions - len(self.kept_positions)


def histories_equal_condition(
    run_a: SingleTupleRun, run_b: SingleTupleRun
) -> Expr:
    """Equation 19: the two histories produce the same result over the
    world of an assignment — either equal surviving tuples or both empty.
    """
    value_equalities = [
        eq(run_a.output_tuple[attribute], run_b.output_tuple[attribute])
        for attribute in run_a.schema
        if run_a.output_tuple[attribute] != run_b.output_tuple[attribute]
    ]
    both_present = and_(
        *(value_equalities + [run_a.local_condition, run_b.local_condition])
    )
    both_absent = and_(
        Not(run_a.local_condition), Not(run_b.local_condition)
    )
    return simplify(or_(both_present, both_absent))


def slicing_condition(
    run_h: SingleTupleRun,
    run_m: SingleTupleRun,
    run_h_sliced: SingleTupleRun,
    run_m_sliced: SingleTupleRun,
) -> Expr:
    """The body of ζ (Equation 18): for the current world, the full and
    sliced histories produce identical single-tuple deltas."""
    eq_full = histories_equal_condition(run_h, run_m)
    eq_sliced = histories_equal_condition(run_h_sliced, run_m_sliced)
    cross_a = and_(
        histories_equal_condition(run_h, run_h_sliced),
        histories_equal_condition(run_m, run_m_sliced),
    )
    cross_b = and_(
        histories_equal_condition(run_h, run_m_sliced),
        histories_equal_condition(run_m, run_h_sliced),
    )
    return or_(
        and_(eq_full, eq_sliced),
        and_(Not(eq_full), or_(cross_a, cross_b)),
    )


class _RelationSlicer:
    """Slicing state for one relation: shared input tuple, Φ_D, and the
    cached full-history runs."""

    def __init__(
        self,
        relation: str,
        schema: Schema,
        aligned: AlignedHistories,
        database: Database,
        config: ProgramSlicingConfig,
    ) -> None:
        self.relation = relation
        self.schema = schema
        self.aligned = aligned
        self.config = config
        self.input_tuple = SymbolicTuple.fresh(schema, prefix=f"in_{relation}")
        self.phi_d = compress_relation(
            database[relation], self.input_tuple, config.compression
        )
        self._counter = 0
        self.solver_calls = 0
        self.solver_seconds = 0.0
        self.run_h = self._run(aligned.original, "h")
        self.run_m = self._run(aligned.modified, "m")

    def _run(self, history: History, tag: str) -> SingleTupleRun:
        self._counter += 1
        return run_history_single_tuple(
            history,
            self.relation,
            self.schema,
            self.input_tuple,
            prefix=f"{tag}{self._counter}_{self.relation}",
        )

    def is_slice(self, kept: Iterable[int]) -> bool:
        """Theorem 4 check for the candidate index set ``kept``."""
        kept_sorted = sorted(set(kept))
        sliced = self.aligned.subset(kept_sorted)
        run_h_sliced = self._run(sliced.original, "hs")
        run_m_sliced = self._run(sliced.modified, "ms")

        body = slicing_condition(
            self.run_h, self.run_m, run_h_sliced, run_m_sliced
        )
        from ..relational.expressions import variables_of

        all_defs = (
            list(self.run_h.global_conjuncts)
            + list(self.run_m.global_conjuncts)
            + list(run_h_sliced.global_conjuncts)
            + list(run_m_sliced.global_conjuncts)
        )
        needed = variables_of(body) | variables_of(self.phi_d)
        relevant = prune_defining_conjuncts(all_defs, needed)
        formula = and_(*([self.phi_d] + relevant + [Not(body)]))

        start = time.perf_counter()
        result: SatResult = check_satisfiable(formula, self.config.solver)
        self.solver_seconds += time.perf_counter() - start
        self.solver_calls += 1
        # UNSAT proves the candidate is a slice; SAT/UNKNOWN keep it out.
        return result.is_unsat


def is_slice(
    aligned: AlignedHistories,
    database: Database,
    schemas: Mapping[str, Schema],
    kept_positions: Iterable[int],
    config: ProgramSlicingConfig | None = None,
) -> bool:
    """Check whether an index set is a slice for every affected relation."""
    config = config or ProgramSlicingConfig()
    kept = set(kept_positions)
    for relation in aligned.target_relations_of_modifications():
        slicer = _RelationSlicer(
            relation, schemas[relation], aligned, database, config
        )
        if not slicer.is_slice(kept):
            return False
    return True


def greedy_slice(
    aligned: AlignedHistories,
    database: Database,
    schemas: Mapping[str, Schema],
    config: ProgramSlicingConfig | None = None,
) -> SliceResult:
    """The greedy slicing algorithm of Section 8.3.3.

    Runs per affected relation (tuple independence makes relations
    independent, DESIGN.md note 4); the global slice keeps a position when
    any relation's slicer keeps it.  Statements on relations without any
    modification never reach reenactment, so they are excluded outright.
    """
    config = config or ProgramSlicingConfig()
    n = len(aligned)
    modified = set(aligned.modified_positions)
    affected_relations = aligned.target_relations_of_modifications()

    kept_global: set[int] = set()
    solver_calls = 0
    solver_seconds = 0.0

    for relation in sorted(affected_relations):
        positions = [
            i
            for i in range(1, n + 1)
            if aligned.original[i].relation == relation
            or aligned.modified[i].relation == relation
        ]
        slicer = _RelationSlicer(
            relation, schemas[relation], aligned, database, config
        )
        current = set(positions)
        for candidate in positions:
            if config.skip_modified_positions and candidate in modified:
                continue
            trial = current - {candidate}
            if slicer.is_slice(trial):
                current = trial
        kept_global |= current
        solver_calls += slicer.solver_calls
        solver_seconds += slicer.solver_seconds

    # Keep modified positions even if a relation-level pass dropped them
    # (they define the query; reenactment needs them present).
    kept_global |= modified
    return SliceResult(
        kept_positions=tuple(sorted(kept_global)),
        total_positions=n,
        solver_calls=solver_calls,
        solver_seconds=solver_seconds,
    )
