"""Static history analysis: statement dependency graphs.

The paper's conclusion points at causal relationships between the updates
of a history as future work; the building block is knowing *which
statements can interact* — exactly the question the Section-9 dependency
condition answers pairwise.  This module lifts it to a whole-history
**dependency graph** (networkx ``DiGraph``): an edge ``i -> j`` (i < j)
means statement ``j`` may read a tuple version statement ``i`` wrote, as
witnessed by a satisfiable overlap formula over the compressed database.

Uses: visualizing workloads, sizing slices before running them, and the
workload generator's tests (generated "independent" updates must come out
isolated here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import networkx as nx

from ..relational.database import Database
from ..relational.expressions import FALSE, and_, or_, simplify
from ..relational.history import History
from ..relational.schema import Schema
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)
from ..solver.sat import SolverConfig, check_satisfiable
from ..symbolic.compress import CompressionConfig, compress_relation
from ..symbolic.symexec import (
    prune_defining_conjuncts,
    run_history_single_tuple,
)
from ..symbolic.vctable import SymbolicTuple
from .dependency import _condition_over

__all__ = ["DependencyAnalysis", "build_dependency_graph"]


@dataclass(frozen=True)
class DependencyAnalysis:
    """Result of the history analysis."""

    graph: nx.DiGraph
    history: History

    def interacting_pairs(self) -> list[tuple[int, int]]:
        return sorted(self.graph.edges())

    def independent_statements(self) -> list[int]:
        """Statements with no interaction edges at all."""
        return sorted(
            node
            for node in self.graph.nodes()
            if self.graph.degree(node) == 0
        )

    def reachable_from(self, position: int) -> set[int]:
        """Statements whose effect may transitively depend on
        ``position`` (the forward cone — the shape of a slice)."""
        return set(nx.descendants(self.graph, position)) | {position}

    def summary(self) -> str:
        nodes = self.graph.number_of_nodes()
        edges = self.graph.number_of_edges()
        isolated = len(self.independent_statements())
        return (
            f"{nodes} statements, {edges} may-interact edges, "
            f"{isolated} isolated"
        )


def _statement_kind(stmt: Statement) -> str:
    if isinstance(stmt, UpdateStatement):
        return "update"
    if isinstance(stmt, DeleteStatement):
        return "delete"
    if isinstance(stmt, InsertTuple):
        return "insert"
    return "insert-query"


def build_dependency_graph(
    history: History,
    database: Database,
    compression: CompressionConfig | None = None,
    solver: SolverConfig | None = None,
) -> DependencyAnalysis:
    """Build the may-interact graph of a history over a database.

    For each relation, the history is executed symbolically once; then for
    every pair ``i < j`` of update/delete statements on that relation the
    overlap formula ``Φ_D ∧ defs ∧ θ_i(t_{i-1}) ∧ θ_j(t_{j-1})`` is
    checked.  Inserts interact with nothing here (their tuples are fresh;
    the Section-10 split handles them), and INSERT..SELECT statements are
    conservatively connected to everything sharing a relation.
    """
    compression = compression or CompressionConfig()
    solver = solver or SolverConfig()
    graph = nx.DiGraph()
    for position in history.positions():
        stmt = history[position]
        graph.add_node(
            position,
            kind=_statement_kind(stmt),
            relation=stmt.relation,
        )

    relations = history.target_relations()
    for relation in sorted(relations):
        if relation not in database:
            continue
        schema = database.schema_of(relation)
        positions = [
            p
            for p, s in history.restrict_to_relation(relation)
            if isinstance(s, (UpdateStatement, DeleteStatement))
        ]
        query_positions = [
            p
            for p, s in history.restrict_to_relation(relation)
            if isinstance(s, InsertQuery)
        ]
        # conservative edges for inserts-with-queries
        for qp in query_positions:
            for p, _ in history.restrict_to_relation(relation):
                if p < qp:
                    graph.add_edge(p, qp)
                elif p > qp:
                    graph.add_edge(qp, p)
        if len(positions) < 2:
            continue

        input_tuple = SymbolicTuple.fresh(schema, prefix=f"ana_{relation}")
        phi_d = compress_relation(
            database[relation], input_tuple, compression
        )
        try:
            run = run_history_single_tuple(
                history, relation, schema, input_tuple,
                prefix=f"an_{relation}",
            )
        # repro-lint: allow[broad-swallow] -- degrades to conservative pairwise edges, never wrong
        except Exception:
            # histories with inserts on this relation: connect pairwise
            # conservatively and move on
            for i in positions:
                for j in positions:
                    if i < j:
                        graph.add_edge(i, j)
            continue

        from ..relational.expressions import variables_of

        for index, i in enumerate(positions):
            tuple_i, local_i = run.steps[i - 1]
            theta_i = and_(
                local_i, _condition_over(history[i], tuple_i)
            )
            for j in positions[index + 1 :]:
                tuple_j, local_j = run.steps[j - 1]
                theta_j = and_(
                    local_j, _condition_over(history[j], tuple_j)
                )
                core = simplify(and_(theta_i, theta_j))
                if core == FALSE:
                    continue
                needed = variables_of(core) | variables_of(phi_d)
                defs = prune_defining_conjuncts(
                    run.global_conjuncts, needed
                )
                formula = and_(phi_d, *defs, core)
                if not check_satisfiable(formula, solver).is_unsat:
                    graph.add_edge(i, j)

    return DependencyAnalysis(graph=graph, history=history)
