"""Reenactment: compiling histories into queries (Definition 3).

Each statement becomes one relational-algebra operator over the previous
state of its target relation::

    R_{U_{Set,theta}} = Π_{if theta then e_1 else A_1, ...}(R)
    R_{D_theta}       = σ_{not theta}(R)
    R_{I_t}           = R ∪ {t}
    R_{I_Q}           = R ∪ Q

The reenactment query of a history is the composition: every reference to
the target relation in ``R_{u_i}`` is substituted by ``R_{u_{i-1}}``.  For
multi-relation histories one query per relation is produced, and queries
inside ``INSERT ... SELECT`` statements reference the reenactment of their
source relations *as of that position* — which is exactly the semantics of
evaluating Q over ``D_{i-1}``.
"""

from __future__ import annotations

from typing import Mapping

from ..relational.algebra import (
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    output_schema,
    substitute_scans,
)
from ..relational.expressions import Attr, Expr, If, Not, simplify
from ..relational.history import History
from ..relational.schema import Schema, SchemaError
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)

__all__ = [
    "reenact_statement",
    "reenactment_queries",
    "reenactment_query",
]


def reenact_statement(
    stmt: Statement,
    schema: Schema,
    db_schemas: Mapping[str, Schema] | None = None,
) -> Operator:
    """The single-statement reenactment query ``R_u`` (over a base scan of
    the target relation).

    ``db_schemas`` (when available) lets ``INSERT ... SELECT`` relabel
    its query output to the target schema: the statement is positional,
    so a source query with different attribute names must not trip the
    union's name-compatibility check.
    """
    scan = RelScan(stmt.relation)
    if isinstance(stmt, UpdateStatement):
        outputs: list[tuple[Expr, str]] = []
        for attribute in schema:
            if attribute in stmt.set_clauses:
                expr: Expr = If(
                    stmt.condition,
                    stmt.set_clauses[attribute],
                    Attr(attribute),
                )
            else:
                expr = Attr(attribute)
            outputs.append((expr, attribute))
        return Project(scan, tuple(outputs))
    if isinstance(stmt, DeleteStatement):
        return Select(scan, simplify(Not(stmt.condition)))
    if isinstance(stmt, InsertTuple):
        return Union(scan, Singleton(schema, stmt.values))
    if isinstance(stmt, InsertQuery):
        query = stmt.query
        if db_schemas is not None:
            source_schema = output_schema(query, dict(db_schemas))
            if source_schema.arity != schema.arity:
                # Same error the direct apply paths raise — zip below
                # would otherwise silently truncate the wider side.
                raise SchemaError(
                    f"INSERT SELECT arity {source_schema.arity} does not "
                    f"match {stmt.relation} arity {schema.arity}"
                )
            if source_schema.attributes != schema.attributes:
                query = Project(
                    query,
                    tuple(
                        (Attr(old), new)
                        for old, new in zip(source_schema, schema)
                    ),
                )
        return Union(scan, query)
    raise TypeError(f"cannot reenact {stmt!r}")


def reenactment_queries(
    history: History, schemas: Mapping[str, Schema]
) -> dict[str, Operator]:
    """Per-relation reenactment queries ``R^R_H`` for a whole history.

    Maintains one current query per relation, starting at the base scan;
    each statement's reenactment has its scans substituted with the
    current queries (both the target relation and, for ``I_Q``, the source
    relations read by Q).
    """
    current: dict[str, Operator] = {
        name: RelScan(name) for name in schemas
    }
    for stmt in history:
        schema = schemas.get(stmt.relation)
        if schema is None:
            raise KeyError(
                f"statement targets unknown relation {stmt.relation!r}"
            )
        template = reenact_statement(stmt, schema, schemas)
        # Substitute every base scan with that relation's current query:
        # the target scan becomes R_{u_{i-1}}, and scans inside an
        # INSERT ... SELECT query see the other relations as of D_{i-1}.
        current[stmt.relation] = substitute_scans(template, dict(current))
    return current


def reenactment_query(
    history: History, relation: str, schemas: Mapping[str, Schema]
) -> Operator:
    """The reenactment query for one relation (``R^R_H``)."""
    return reenactment_queries(history, schemas)[relation]
