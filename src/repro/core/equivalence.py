"""History equivalence checking — the paper's "future work" application.

Section 14 closes with: *"we will explore novel application of our
symbolic evaluation technique such as proving equivalence of transactional
histories."*  The machinery built for program slicing does exactly this:
two histories are equivalent over a database class when, for every
possible input tuple, they produce the same result — the Equation-19
condition checked for validity instead of the slicing condition.

:func:`check_history_equivalence` decides, for tuple-independent
histories over the relations of a database:

* ``EQUIVALENT`` — proven equal on *every* database admitted by the
  compressed constraint Φ_D (hence on the given database),
* ``DIFFERENT`` — a concrete witness tuple distinguishes them (the
  witness is returned when the solver produces one),
* ``UNKNOWN`` — the solver could not decide (non-linear arithmetic, node
  limits, or inserts-with-queries).

Because Φ_D over-approximates the database, ``EQUIVALENT`` is sound for
the *given* database and any other database satisfying the constraints —
e.g. after new rows arrive within the same value ranges.  ``DIFFERENT``
witnesses are checked against Φ_D but may use tuples not actually present
(set ``require_concrete`` to insist on a tuple from the database).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from ..relational.database import Database
from ..relational.expressions import (
    Expr,
    Not,
    and_,
    evaluate,
    simplify,
)
from ..relational.history import History
from ..relational.schema import Schema
from ..solver.sat import SolverConfig, check_satisfiable
from ..symbolic.compress import CompressionConfig, compress_relation
from ..symbolic.symexec import (
    SymbolicExecutionError,
    prune_defining_conjuncts,
    run_history_single_tuple,
)
from ..symbolic.vctable import SymbolicTuple
from .hwq import AlignedHistories
from .insert_split import can_split, split_inserts
from .program_slicing import histories_equal_condition

__all__ = ["EquivalenceVerdict", "EquivalenceResult", "check_history_equivalence"]


class EquivalenceVerdict(enum.Enum):
    EQUIVALENT = "equivalent"
    DIFFERENT = "different"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome with an optional distinguishing witness."""

    verdict: EquivalenceVerdict
    witness: dict[str, Any] | None = None
    relation: str | None = None

    @property
    def is_equivalent(self) -> bool:
        return self.verdict is EquivalenceVerdict.EQUIVALENT


def check_history_equivalence(
    first: History,
    second: History,
    database: Database,
    compression: CompressionConfig | None = None,
    solver: SolverConfig | None = None,
) -> EquivalenceResult:
    """Prove or refute ``first(D) == second(D)`` for all admitted worlds.

    Constant inserts are handled by the Section-10 split: the inserted
    sides are compared concretely (they are tiny), the update/delete parts
    symbolically.  Inserts with queries yield UNKNOWN.
    """
    compression = compression or CompressionConfig()
    solver = solver or SolverConfig()
    relations = first.target_relations() | second.target_relations()
    schemas: dict[str, Schema] = {
        name: database.schema_of(name)
        for name in relations
        if name in database
    }
    if set(schemas) != relations:
        missing = relations - set(schemas)
        raise KeyError(f"histories target unknown relations {missing}")

    # Pad to an aligned pair so the split machinery applies; padding with
    # no-ops never changes semantics.
    from ..relational.statements import no_op

    max_len = max(len(first), len(second))
    first_padded = list(first.statements)
    second_padded = list(second.statements)
    anchor = next(iter(relations)) if relations else None
    while len(first_padded) < max_len:
        first_padded.append(no_op(anchor))
    while len(second_padded) < max_len:
        second_padded.append(no_op(anchor))
    aligned = AlignedHistories(
        History(tuple(first_padded)), History(tuple(second_padded))
    )

    if not can_split(aligned):
        return EquivalenceResult(EquivalenceVerdict.UNKNOWN)
    split = split_inserts(aligned, schemas)

    # Inserted-tuple sides must agree exactly.
    for name in schemas:
        left = split.inserted_original[name]
        right = split.inserted_modified[name]
        if set(left.tuples) != set(right.tuples):
            sample = next(iter(left.tuples ^ right.tuples))
            return EquivalenceResult(
                EquivalenceVerdict.DIFFERENT,
                witness=dict(zip(schemas[name].attributes, sample)),
                relation=name,
            )

    # Symbolic comparison of the update/delete parts, per relation.
    pair = split.without_inserts
    for name, schema in sorted(schemas.items()):
        input_tuple = SymbolicTuple.fresh(schema, prefix=f"eqv_{name}")
        phi_d = compress_relation(database[name], input_tuple, compression)
        try:
            run_a = run_history_single_tuple(
                pair.original, name, schema, input_tuple, prefix=f"ea_{name}"
            )
            run_b = run_history_single_tuple(
                pair.modified, name, schema, input_tuple, prefix=f"eb_{name}"
            )
        except SymbolicExecutionError:
            return EquivalenceResult(EquivalenceVerdict.UNKNOWN)

        equal = histories_equal_condition(run_a, run_b)
        from ..relational.expressions import variables_of

        needed = variables_of(equal) | variables_of(phi_d)
        defs = prune_defining_conjuncts(
            tuple(run_a.global_conjuncts) + tuple(run_b.global_conjuncts),
            needed,
        )
        formula = and_(phi_d, *defs, Not(equal))
        result = check_satisfiable(simplify(formula), solver)
        if result.is_unsat:
            continue
        if result.is_sat:
            witness = None
            if result.witness:
                witness = {
                    attribute: result.witness.get(f"eqv_{name}_{attribute}")
                    for attribute in schema
                    if f"eqv_{name}_{attribute}" in result.witness
                }
            return EquivalenceResult(
                EquivalenceVerdict.DIFFERENT,
                witness=witness or None,
                relation=name,
            )
        return EquivalenceResult(EquivalenceVerdict.UNKNOWN)
    return EquivalenceResult(EquivalenceVerdict.EQUIVALENT)
