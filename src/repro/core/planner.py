"""Cost-based adaptive execution planning (DESIGN.md, "Adaptive planning").

PR 5's sharded execution shipped with a foot-gun: 4-shard execution is a
0.66–0.81x *slowdown* on R+PS+DS, because partitioning, routing scans
and pool dispatch cost more than the tiny data-sliced inputs save.  This
module decides *per query* whether sharding pays, from statistics that
are already nearly free at planning time:

* relation cardinalities — ``len(plan.start_db[relation])``,
* routing-condition selectivity — estimated by evaluating the compiled
  ``θ_H ∨ θ_{H[M]}`` predicate over a **bounded sample** of rows
  (``DEFAULT_SAMPLE_LIMIT``), instead of the full O(n) parent-side scan
  :func:`repro.core.shard.shard_keep_mask` performs; sampled matches are
  kept as *witness* rows that later prove shards non-skippable without
  rescanning them,
* shardability — :func:`repro.core.shard.shardable` per query pair,
* per-backend constant costs — calibrated once from
  ``BENCH_backend.json``-style microbenchmarks
  (:func:`calibrate_cost_model`), with defaults measured on the
  ``benchmarks/bench_shard.py`` workload.

The output is an :class:`ExecutionChoice` — shard count, worker count,
partition scheme and backend — consumed by ``Mahif.answer`` /
``answer_batch`` when ``MahifConfig(shards="auto")`` (stored as the
``AUTO_SHARDS`` = 0 sentinel) and surfaced verbatim in service payloads.

Soundness is never delegated to the estimates: a mispredicted
selectivity can only cost time.  Witnesses only ever *keep* shards
(skipping still requires :func:`shard_keep_mask`'s exhaustive
error-conservative scan), and a choice of ``shards=1`` simply runs the
sequential path that defines correctness.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Mapping

from ..obs import trace
from ..obs.metrics import global_registry
from ..relational.algebra import operator_count
from ..relational.expressions import TRUE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import MahifConfig, _ReenactmentPlan

__all__ = [
    "AUTO_SHARDS",
    "DEFAULT_SAMPLE_LIMIT",
    "MAX_AUTO_SHARDS",
    "SelectivityEstimate",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "calibrate_cost_model",
    "ExecutionChoice",
    "estimate_relation",
    "plan_execution",
]

#: ``MahifConfig.shards`` sentinel for "let the planner decide".
#: ``shards="auto"`` normalizes to this at config construction.
AUTO_SHARDS = 0

#: Rows sampled per relation when estimating routing selectivity.  The
#: sample walks the relation at a fixed stride, so cost is bounded by
#: the limit regardless of cardinality (~20µs at 256 rows).
DEFAULT_SAMPLE_LIMIT = 256

#: Witness rows retained per relation: enough to cover every shard the
#: planner would create, cheap enough to probe per shard.
MAX_WITNESSES = 32

#: Largest shard count the planner will choose on its own.
MAX_AUTO_SHARDS = 16

#: Candidate shard counts evaluated by :func:`plan_execution`.
_SHARD_CANDIDATES = (2, 4, 8, 16)


@dataclass(frozen=True)
class SelectivityEstimate:
    """Sampled routing statistics for one affected relation.

    ``trivial`` means the routing condition is ``TRUE`` (or could not be
    compiled): no shard may skip, selectivity is pinned to 1 and there
    are no witnesses.  ``witnesses`` are sampled rows that *satisfy* the
    routing condition (rows the predicate errored on are included — the
    same conservatism as ``shard_keep_mask``): any shard containing one
    is provably non-skippable without scanning it.
    """

    relation: str
    cardinality: int
    sampled: int
    matched: int
    shardable: bool
    trivial: bool
    witnesses: tuple[tuple[Any, ...], ...] = ()

    @property
    def selectivity(self) -> float:
        """Estimated fraction of rows the routing condition selects."""
        if self.trivial:
            return 1.0
        if not self.sampled:
            return 1.0 if self.cardinality else 0.0
        return self.matched / self.sampled


# Constants measured on the benchmarks/bench_shard.py workload (40k
# rows, 12 updates, compiled backend): evaluating an unfiltered
# reenactment pair costs ~4.7e-7 s per (row × operator); a data-sliced
# pair is dominated by the injected selection's scan at ~1.2e-6 s per
# row; range partitioning (sort + per-shard Relation rebuild) costs
# ~1.8e-6 s per row — which is exactly why sharding loses on R+PS+DS:
# partitioning 40k rows (~73ms) costs more than the whole sliced
# evaluation (~45ms).  Interpreted scales from BENCH_backend.json's
# hot-path ratio (~10x compiled); sqlite pays an extra per-row shard
# ingest (every shard becomes its own server-side database); vector
# amortises per-row dispatch into whole-column kernels, so its per-row
# constants sit below compiled (measured on the same bench workload,
# join-heavy plans ~1.3-2x compiled throughput at bench scale).
_DEFAULT_ROW_OP_COST = MappingProxyType({
    "interpreted": 5.0e-6,
    "compiled": 5.0e-7,
    "sqlite": 6.0e-7,
    "vector": 4.0e-7,
})
_DEFAULT_DS_ROW_COST = MappingProxyType({
    "interpreted": 1.2e-5,
    "compiled": 1.2e-6,
    "sqlite": 1.5e-6,
    "vector": 8.0e-7,
})
_DEFAULT_SHARD_ROW_COST = MappingProxyType({
    "interpreted": 0.0,
    "compiled": 0.0,
    "sqlite": 2.5e-6,
    # Vector pays a per-shard columnarisation of each (smaller) shard
    # relation — cheap, but not free like the tuple-streaming backends.
    "vector": 3.0e-7,
})


@dataclass(frozen=True)
class CostModel:
    """Per-backend constants the planner prices candidate plans with.

    All costs are seconds.  ``row_op_cost`` prices one (row × operator)
    of unfiltered evaluation; ``ds_row_cost`` one scanned row of a
    data-sliced pair (the injected selections make per-operator cost
    negligible past the scan); ``shard_row_cost`` extra per-row cost a
    backend pays per *evaluated* shard row (sqlite re-ingests each shard
    as its own database).  ``min_benefit_seconds`` and ``min_speedup``
    are the margins a sharded candidate must clear over the sequential
    estimate before the planner risks it — estimates are coarse, and a
    wrong ``shards>1`` costs real time while a wrong ``shards=1`` only
    forgoes a speedup.
    """

    row_op_cost: Mapping[str, float] = field(
        default_factory=lambda: _DEFAULT_ROW_OP_COST
    )
    ds_row_cost: Mapping[str, float] = field(
        default_factory=lambda: _DEFAULT_DS_ROW_COST
    )
    shard_row_cost: Mapping[str, float] = field(
        default_factory=lambda: _DEFAULT_SHARD_ROW_COST
    )
    partition_row_cost: float = 1.8e-6
    keep_scan_row_cost: float = 7.5e-8
    merge_row_cost: float = 3.0e-7
    shard_fixed_cost: float = 3.0e-4
    planning_cost: float = 1.0e-3
    min_benefit_seconds: float = 0.010
    min_speedup: float = 1.25
    #: Parallel dispatch only pays past this much parallelizable work
    #: (fork/pickle/IPC overhead; below it, serial shard evaluation with
    #: skip routing is the faster "parallel" plan).
    parallel_threshold_seconds: float = 0.5

    def row_op(self, backend: str) -> float:
        return self.row_op_cost.get(backend, _DEFAULT_ROW_OP_COST["compiled"])

    def ds_row(self, backend: str) -> float:
        return self.ds_row_cost.get(backend, _DEFAULT_DS_ROW_COST["compiled"])

    def shard_row(self, backend: str) -> float:
        return self.shard_row_cost.get(backend, 0.0)


DEFAULT_COST_MODEL = CostModel()


def calibrate_cost_model(report: Mapping[str, Any]) -> CostModel:
    """Derive a :class:`CostModel` from a ``BENCH_backend.json`` report.

    Only backend *ratios* are taken from the report (its absolute
    numbers measure a different workload): the compiled per-row-op
    constant anchors the scale and each backend's hot-path exe time on
    the largest measured size rescales it.  Malformed or partial reports
    fall back to :data:`DEFAULT_COST_MODEL` — calibration must never be
    able to break planning.
    """
    try:
        rows = report["hot_path"]
        largest = max(rows, key=lambda entry: entry["rows"])
        compiled = float(largest["compiled_exe"])
        if compiled <= 0:
            return DEFAULT_COST_MODEL
        base = _DEFAULT_ROW_OP_COST["compiled"]
        ds_base = _DEFAULT_DS_ROW_COST["compiled"]
        row_op: dict[str, float] = {}
        ds_row: dict[str, float] = {}
        for backend in ("interpreted", "compiled", "sqlite", "vector"):
            exe = float(largest.get(f"{backend}_exe", 0.0))
            if exe <= 0:
                if backend == "vector":
                    # Pre-vector reports simply lack the column: keep
                    # the measured ratios for the other backends and
                    # fall back to the default constants for vector.
                    row_op[backend] = _DEFAULT_ROW_OP_COST[backend]
                    ds_row[backend] = _DEFAULT_DS_ROW_COST[backend]
                    continue
                return DEFAULT_COST_MODEL
            ratio = exe / compiled
            row_op[backend] = base * ratio
            ds_row[backend] = ds_base * ratio
        return CostModel(
            row_op_cost=MappingProxyType(row_op),
            ds_row_cost=MappingProxyType(ds_row),
        )
    except (KeyError, TypeError, ValueError):
        return DEFAULT_COST_MODEL


@dataclass(frozen=True)
class ExecutionChoice:
    """The planner's verdict for one reenactment plan.

    ``estimates`` carries the per-relation sampled statistics so the
    shard layer can reuse the witnesses (keep-mask short-circuit) and so
    tests/benchmarks can inspect what the decision was based on.
    """

    shards: int
    shard_workers: int
    scheme: str
    backend: str
    estimated_seconds: float
    baseline_seconds: float
    reason: str
    estimates: Mapping[str, SelectivityEstimate] = field(
        default_factory=dict
    )

    def payload(self) -> dict[str, Any]:
        """JSON-safe summary recorded in service response payloads."""
        return {
            "shards": self.shards,
            "shard_workers": self.shard_workers,
            "scheme": self.scheme,
            "backend": self.backend,
            "estimated_seconds": round(self.estimated_seconds, 6),
            "baseline_seconds": round(self.baseline_seconds, 6),
            "reason": self.reason,
        }


def _rows_of(relation: Any) -> Any:
    """Row container of a set or bag relation (distinct rows for bags)."""
    tuples = getattr(relation, "tuples", None)
    if tuples is not None:
        return tuples
    return getattr(relation, "multiplicities", ())


def estimate_relation(
    plan: "_ReenactmentPlan",
    relation: str,
    *,
    sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    max_witnesses: int = MAX_WITNESSES,
) -> SelectivityEstimate:
    """Sample one relation's routing selectivity (bounded, never O(n)).

    Walks the relation's rows at a fixed stride so at most
    ``sample_limit`` predicate evaluations happen however large the
    relation is.  Rows the predicate errors on count as matches *and*
    witnesses — mirroring ``shard_keep_mask``'s never-skip-on-error
    rule, so a witness is always a row the exhaustive scan would also
    have kept its shard for.
    """
    from .shard import routing_condition, shardable

    rel = plan.start_db[relation]
    cardinality = len(rel)
    is_shardable = shardable(plan.queries_h[relation], relation) and (
        shardable(plan.queries_m[relation], relation)
    )
    condition = routing_condition(plan.routing, relation)
    if condition == TRUE or cardinality == 0:
        return SelectivityEstimate(
            relation, cardinality, 0, 0, is_shardable, True
        )
    from ..relational.exec import compile_predicate

    try:
        predicate = compile_predicate(condition, rel.schema)
    # repro-lint: allow[broad-swallow] -- uncompilable condition degrades to all-match, costs only speed
    except Exception:
        return SelectivityEstimate(
            relation, cardinality, 0, 0, is_shardable, True
        )
    rows = _rows_of(rel)
    stride = max(1, len(rows) // max(1, sample_limit))
    sampled = matched = 0
    witnesses: list[tuple[Any, ...]] = []
    for index, row in enumerate(rows):
        if index % stride:
            continue
        sampled += 1
        try:
            hit = bool(predicate(row))
        # repro-lint: allow[broad-swallow] -- mirrors shard_keep_mask: erroring rows must match
        except Exception:
            hit = True
        if hit:
            matched += 1
            if len(witnesses) < max_witnesses:
                witnesses.append(row)
        if sampled >= sample_limit:
            break
    return SelectivityEstimate(
        relation,
        cardinality,
        sampled,
        matched,
        is_shardable,
        False,
        tuple(witnesses),
    )


def _evaluated_shards(
    estimate: SelectivityEstimate,
    shards: int,
    scheme: str,
    has_singleton: bool,
) -> int:
    """Expected number of shards the keep mask retains.

    Range partitioning clusters the (key-correlated) routing matches
    into contiguous shards, so roughly ``ceil(selectivity × shards)``
    survive — plus one shard of slack for imperfect clustering and the
    protected first shard singletons pin.  Hash partitioning scatters
    matches uniformly: any real selectivity touches essentially every
    shard, so skipping is only modelled for an exactly-zero sample.
    """
    if estimate.trivial:
        return shards
    selectivity = estimate.selectivity
    if scheme != "range":
        return shards if selectivity > 0 else 1
    base = math.ceil(selectivity * shards)
    slack = 1 if (has_singleton or 0 < selectivity) else 0
    return max(1, min(shards, base + slack))


def _relation_cost(
    model: CostModel,
    backend: str,
    estimate: SelectivityEstimate,
    ops: int,
    filtered: bool,
    shards: int,
    scheme: str,
    has_singleton: bool,
) -> float:
    """Predicted seconds to evaluate one relation's delta at ``shards``.

    ``filtered`` marks DS methods, whose injected selections make the
    pair's cost scan-dominated: ``card × ds_row + s × card × ops ×
    row_op``.  Unfiltered pairs stream every row through every
    operator: ``card × ops × row_op``.  Sharded plans add partitioning,
    the keep-mask scan, per-shard merge and fixed costs, and only
    evaluate the kept fraction of rows.
    """
    card = estimate.cardinality
    selectivity = estimate.selectivity

    def pair_cost(rows: float) -> float:
        if filtered:
            return rows * model.ds_row(backend) + (
                selectivity * card * ops * model.row_op(backend)
            )
        return rows * ops * model.row_op(backend)

    if shards <= 1 or not estimate.shardable:
        return pair_cost(card)
    evaluated = _evaluated_shards(estimate, shards, scheme, has_singleton)
    fraction = evaluated / shards
    cost = card * model.partition_row_cost
    if not estimate.trivial:
        cost += card * model.keep_scan_row_cost
    cost += pair_cost(fraction * card)
    cost += fraction * card * (
        model.merge_row_cost + model.shard_row(backend)
    )
    cost += evaluated * model.shard_fixed_cost
    return cost


#: Planner decisions by outcome (process-global: the planner runs deep
#: inside engines that do not know which service owns them).
_PLANNER_CHOICES = global_registry().counter(
    "mahif_planner_choice_total",
    "Adaptive-planner execution choices by decision "
    "(sharded, sequential).",
    ("decision",),
)


def plan_execution(
    plan: "_ReenactmentPlan",
    config: "MahifConfig",
    *,
    backend: str | None = None,
    cost_model: CostModel | None = None,
    sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    max_shards: int = MAX_AUTO_SHARDS,
    cpu_count: int | None = None,
) -> ExecutionChoice:
    """Choose an execution configuration for one reenactment plan,
    recording the decision (counter + trace span) on the way out.

    See :func:`_plan_execution_inner` for the costing itself.
    """
    with trace.span("planner") as span_:
        choice = _plan_execution_inner(
            plan,
            config,
            backend=backend,
            cost_model=cost_model,
            sample_limit=sample_limit,
            max_shards=max_shards,
            cpu_count=cpu_count,
        )
        span_.set_attributes(
            {
                "shards": choice.shards,
                "shard_workers": choice.shard_workers,
                "scheme": choice.scheme,
                "backend": choice.backend,
                "estimated_seconds": choice.estimated_seconds,
                "baseline_seconds": choice.baseline_seconds,
                "reason": choice.reason,
            }
        )
    _PLANNER_CHOICES.inc(
        decision="sharded" if choice.shards > 1 else "sequential"
    )
    return choice


def _plan_execution_inner(
    plan: "_ReenactmentPlan",
    config: "MahifConfig",
    *,
    backend: str | None = None,
    cost_model: CostModel | None = None,
    sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    max_shards: int = MAX_AUTO_SHARDS,
    cpu_count: int | None = None,
) -> ExecutionChoice:
    """Choose an execution configuration for one reenactment plan.

    Prices the plan at shards ∈ {1} ∪ ``_SHARD_CANDIDATES`` (bounded by
    ``max_shards``) under the cost model and keeps the cheapest — but
    only commits to sharding when it clears both safety margins
    (``min_benefit_seconds`` absolute and ``min_speedup`` relative),
    because an over-eager shard choice re-creates exactly the regression
    this planner exists to fix.  Workers are enabled only when at least
    two shards will actually be evaluated *and* the parallelizable
    evaluation work dwarfs pool dispatch overhead.
    """
    from ..relational.exec.backend import resolve_backend
    from .shard import _contains_singleton

    from .shard import shardable

    backend = backend or resolve_backend(config.backend)
    model = cost_model or DEFAULT_COST_MODEL
    scheme = config.shard_scheme
    filtered = plan.method.uses_data_slicing

    ops: dict[str, int] = {}
    singleton: dict[str, bool] = {}
    cheap: dict[str, SelectivityEstimate] = {}
    for relation in sorted(plan.affected):
        ops[relation] = operator_count(
            plan.queries_h[relation]
        ) + operator_count(plan.queries_m[relation])
        singleton[relation] = _contains_singleton(
            plan.queries_h[relation]
        ) or _contains_singleton(plan.queries_m[relation])
        # Statistics that cost nothing: cardinality and shardability.
        # Selectivity optimistically 0 (matched=0 over a nonzero
        # sample) — the benefit of sharding is maximal there, which is
        # what the quick-reject bound below needs.
        cheap[relation] = SelectivityEstimate(
            relation,
            len(plan.start_db[relation]),
            1,
            0,
            shardable(plan.queries_h[relation], relation)
            and shardable(plan.queries_m[relation], relation),
            False,
        )

    def total_with(
        estimates: Mapping[str, SelectivityEstimate], shards: int
    ) -> float:
        return sum(
            _relation_cost(
                model, backend, estimates[rel], ops[rel], filtered,
                shards, scheme, singleton[rel],
            )
            for rel in estimates
        )

    # Quick reject, before compiling or sampling any routing predicate:
    # both the sequential and the sharded cost are non-decreasing in
    # selectivity and the sharded side rises at least as fast (more
    # shards survive the keep mask), so the benefit of sharding is
    # largest at selectivity 0.  If even that optimistic bound cannot
    # clear the margins, planning ends here — the planner's own
    # overhead on sub-threshold inputs is exactly the kind of
    # regression it exists to prevent.
    cheap_baseline = total_with(cheap, 1)
    optimistic = min(
        (
            total_with(cheap, shards)
            for shards in _SHARD_CANDIDATES
            if shards <= max_shards
        ),
        default=cheap_baseline,
    )
    if (
        cheap_baseline - optimistic < model.min_benefit_seconds
        or cheap_baseline < model.min_speedup * optimistic
    ):
        return ExecutionChoice(
            shards=1,
            shard_workers=0,
            scheme=scheme,
            backend=backend,
            estimated_seconds=cheap_baseline,
            baseline_seconds=cheap_baseline,
            reason=(
                f"sequential: est {cheap_baseline:.4f}s; sharding cannot "
                f"clear the margin even at selectivity 0"
            ),
            estimates=cheap,
        )

    estimates: dict[str, SelectivityEstimate] = {
        relation: estimate_relation(
            plan, relation, sample_limit=sample_limit
        )
        for relation in sorted(plan.affected)
    }

    baseline = total_with(estimates, 1)
    best_shards, best_cost = 1, baseline
    for shards in _SHARD_CANDIDATES:
        if shards > max_shards:
            continue
        cost = total_with(estimates, shards) + model.planning_cost
        if cost < best_cost:
            best_shards, best_cost = shards, cost

    if best_shards > 1 and (
        baseline - best_cost < model.min_benefit_seconds
        or baseline < model.min_speedup * best_cost
    ):
        best_shards, best_cost = 1, baseline

    workers = 0
    reason = (
        f"sequential: est {baseline:.4f}s; sharding clears no margin"
    )
    if best_shards > 1:
        evaluated_total = sum(
            _evaluated_shards(
                estimates[rel], best_shards, scheme, singleton[rel]
            )
            for rel in estimates
            if estimates[rel].shardable
        )
        parallel_work = sum(
            _relation_cost(
                model, backend, estimates[rel], ops[rel], filtered,
                best_shards, scheme, singleton[rel],
            )
            for rel in estimates
            if estimates[rel].shardable
        )
        if (
            evaluated_total >= 2
            and parallel_work >= model.parallel_threshold_seconds
        ):
            cpus = cpu_count if cpu_count is not None else (
                os.cpu_count() or 1
            )
            workers = max(0, min(evaluated_total, best_shards, cpus))
            if workers < 2:
                workers = 0
        reason = (
            f"sharded x{best_shards}: est {best_cost:.4f}s vs "
            f"{baseline:.4f}s sequential"
        )
    return ExecutionChoice(
        shards=best_shards,
        shard_workers=workers,
        scheme=scheme,
        backend=backend,
        estimated_seconds=best_cost,
        baseline_seconds=baseline,
        reason=reason,
        estimates=estimates,
    )
