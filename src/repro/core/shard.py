"""Sharded, partition-parallel reenactment (DESIGN.md, "Sharded execution").

The data-slicing theory already tells the engine *which* tuples a
hypothetical modification can affect; this module uses the same
machinery to scale reenactment *out*: each affected relation is
horizontally partitioned (:mod:`repro.relational.partition`), the
query pair ``(Q_H, Q_{H[M]})`` is evaluated independently per shard —
serially or over the same ``concurrent.futures`` pools the batch path
uses (processes for the in-process backends, threads for sqlite, whose
per-thread connection cache gives every worker its own generation-token
cached connections per shard database) — and the per-shard
``(added, removed, common)`` triples merge back into one exact delta.

Two properties make this sound (proof sketches in DESIGN.md):

* **distributivity** — reenactment queries for histories without
  ``INSERT ... SELECT`` are trees of scan/select/project/union/singleton
  over their *own* relation, and every one of those operators distributes
  over a union of scan inputs (singletons are union-idempotent under set
  semantics), so ``∪_s Q(R_s) = Q(R)``; queries that join or read other
  relations are detected by :func:`shardable` and fall back to one
  unsharded evaluation,
* **skip routing** — a shard none of whose tuples satisfies the
  data-slicing condition ``θ_H ∨ θ_{H[M]}`` of its relation is provably
  untouched by the modification: both reenactments map each of its
  tuples identically, so the shard contributes nothing to the delta and
  skips evaluation entirely.  (Cross-shard cancellation of a skipped
  shard's images relies on histories being key-preserving — exactly the
  assumption Theorem 2's data slicing already makes; see DESIGN.md.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..relational.algebra import (
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
    walk_operators,
)
from ..relational.database import Database
from ..relational.expressions import Expr, FALSE, TRUE, or_, simplify
from ..relational.partition import (
    ShardDelta,
    merge_shard_deltas,
    partition_relation,
    shard_delta,
)
from ..obs import trace
from ..relational.relation import Relation
from .data_slicing import DataSlicingConditions
from .delta import RelationDelta

__all__ = [
    "shardable",
    "routing_condition",
    "shard_keep_mask",
    "RelationShardWork",
    "plan_relation_shards",
    "merge_relation_shards",
    "evaluate_shard_works",
    "evaluate_plan_sharded",
]


def shardable(op: Operator, relation: str) -> bool:
    """True when ``∪_s op(R_s) = op(R)`` holds by construction.

    Requires every node to be a scan of ``relation`` itself, a
    selection, a projection, a union, or a constant singleton.  A join,
    a difference, or a scan of *another* relation (an ``INSERT ...
    SELECT`` in the history) breaks per-shard distributivity — those
    queries are evaluated unsharded.
    """
    for node in walk_operators(op):
        if isinstance(node, RelScan):
            if node.name != relation:
                return False
        elif not isinstance(node, (Select, Project, Union, Singleton)):
            return False
    return True


def _contains_singleton(op: Operator) -> bool:
    return any(isinstance(node, Singleton) for node in walk_operators(op))


def _range_key_index(schema, condition: Expr) -> int:
    """The column range partitioning sorts on: the first schema column
    the routing condition mentions, so tuples the condition selects
    cluster into few contiguous shards and the rest skip.  Falls back
    to the leading (conventionally key) column when the condition is
    unavailable or mentions nothing in the schema."""
    from ..relational.expressions import attributes_of

    mentioned = attributes_of(condition)
    for index, attribute in enumerate(schema.attributes):
        if attribute in mentioned:
            return index
    return 0


def routing_condition(
    routing: DataSlicingConditions | None, relation: str
) -> Expr:
    """The per-relation skip-routing condition ``θ_H ∨ θ_{H[M]}``.

    ``TRUE`` (no shard may skip) when no conditions are available or the
    relation is missing from both maps — missing is treated
    conservatively here, unlike the engine's relation-level skip, because
    routing decides per *shard* and must never guess.
    """
    if routing is None:
        return TRUE
    cond_h = routing.for_original.get(relation)
    cond_m = routing.for_modified.get(relation)
    if cond_h is None and cond_m is None:
        return TRUE
    return simplify(
        or_(
            cond_h if cond_h is not None else FALSE,
            cond_m if cond_m is not None else FALSE,
        )
    )


def shard_keep_mask(
    parts: Sequence[Relation],
    condition: Expr,
    *,
    protect_first: bool = False,
    witnesses: Sequence[tuple] = (),
) -> list[bool]:
    """Which shards must be evaluated under ``condition``.

    A shard is kept when any of its tuples satisfies the routing
    condition — rows the compiled predicate *errors* on count as
    matches, so routing can never skip a shard the sequential path would
    have surfaced an evaluation error for.  ``protect_first`` pins the
    first shard (reenactment singletons — inserted tuples — are
    evaluated per shard and must survive in at least one).

    ``witnesses`` are rows the adaptive planner already observed to
    satisfy the condition (or error under it — the same conservatism as
    the scan below): a shard containing one is *proven* non-skippable by
    a handful of O(1) membership probes, short-circuiting the exhaustive
    scan.  Soundness is one-sided by construction — witnesses only ever
    keep shards; the full error-conservative scan still runs wherever a
    skip remains possible, so the mask can never skip a shard the
    witness-free mask would have kept.
    """
    if condition == TRUE:
        return [True] * len(parts)
    from ..relational.exec import compile_predicate

    predicate = compile_predicate(condition, parts[0].schema)
    keep = []
    for index, part in enumerate(parts):
        if index == 0 and protect_first:
            keep.append(True)
            continue
        if witnesses and any(row in part.tuples for row in witnesses):
            keep.append(True)
            continue
        matched = False
        for row in part.tuples:
            try:
                if predicate(row):
                    matched = True
                    break
            # repro-lint: allow[broad-swallow] -- erroring rows must keep their shard, never skip
            except Exception:
                matched = True
                break
        keep.append(matched)
    return keep


def shard_pair_task(
    backend: str | None,
    query_h: Operator,
    query_m: Operator,
    db: Database,
    extra_original: Relation | None,
    extra_modified: Relation | None,
) -> tuple[ShardDelta, float]:
    """Evaluate one shard's (or one unsharded fallback's) query pair.

    Module-level so process-pool workers pick it up by reference, like
    :func:`repro.core.engine._relation_delta_task`; returns the shard's
    delta triple plus its worker-side wall time.
    """
    t0 = time.perf_counter()
    result_h = evaluate_query(query_h, db, backend=backend)
    result_m = evaluate_query(query_m, db, backend=backend)
    if extra_original is not None:
        result_h = result_h.union(extra_original)
    if extra_modified is not None:
        result_m = result_m.union(extra_modified)
    return shard_delta(result_h, result_m), time.perf_counter() - t0


@dataclass(frozen=True)
class RelationShardWork:
    """Planned shard evaluation for one (query, relation) delta.

    ``calls`` are ready argument tuples for :func:`shard_pair_task`;
    ``extra`` is the insert-split pseudo-shard (the Section-10 inserted
    tuples, merged in-parent instead of shipping them to every worker);
    ``sharded`` is False for the unsharded fallback (one call carrying
    the full start database and the extras inline).  ``fallback_call``
    is the pre-built unsharded (shards=1) call for a *sharded* work —
    if any of its shard calls fails, :func:`evaluate_shard_works`
    re-evaluates the whole relation through it in-parent instead of
    failing the query (degradation event ``shard_fallback``)."""

    relation: str
    calls: tuple[tuple, ...]
    extra: ShardDelta | None
    schema: Any
    sharded: bool
    shard_count: int
    skipped: int
    fallback_call: tuple | None = None


def plan_relation_shards(
    backend: str | None,
    plan,
    relation: str,
    shards: int,
    scheme: str,
    partitions: dict | None = None,
    hints: Mapping | None = None,
) -> RelationShardWork:
    """Plan one relation's delta evaluation under ``shards`` partitions.

    ``plan`` is the engine's :class:`~repro.core.engine._ReenactmentPlan`;
    ``partitions`` optionally memoizes partition lists across queries of
    a batch that share the same start database (keyed by database
    identity — safe because databases are immutable).  ``hints`` maps
    relation names to the adaptive planner's
    :class:`~repro.core.planner.SelectivityEstimate`: its witness rows
    let :func:`shard_keep_mask` prove shards non-skippable without
    scanning them.
    """
    query_h = plan.queries_h[relation]
    query_m = plan.queries_m[relation]
    extra_h = (
        plan.inserted_original[relation]
        if plan.inserted_original is not None
        else None
    )
    extra_m = (
        plan.inserted_modified[relation]
        if plan.inserted_modified is not None
        else None
    )
    base_schema = plan.start_db.schema_of(relation)
    if (
        shards <= 1
        or not shardable(query_h, relation)
        or not shardable(query_m, relation)
    ):
        # Unsharded fallback: ship only the relations the query pair
        # actually scans, not the whole start database — on a process
        # pool the full database would otherwise pickle once per
        # fallback relation.
        from ..relational.algebra import base_relations

        needed = base_relations(query_h) | base_relations(query_m)
        fallback_db = Database(
            {
                name: plan.start_db[name]
                for name in sorted(needed)
                if name in plan.start_db
            }
        )
        call = (backend, query_h, query_m, fallback_db, extra_h, extra_m)
        return RelationShardWork(
            relation, (call,), None, base_schema, False, 1, 0
        )

    condition = routing_condition(plan.routing, relation)
    key_index = _range_key_index(base_schema, condition) if (
        scheme == "range"
    ) else 0
    # The memo stores the per-shard Database wrappers, not just the
    # Relation parts: the sqlite backend's connection cache is keyed by
    # database identity, so batch queries sharing a start database must
    # reuse the same wrapper objects or every query would re-ingest
    # every shard server-side.
    key = (id(plan.start_db), relation, shards, scheme, key_index)
    shard_dbs = partitions.get(key) if partitions is not None else None
    if shard_dbs is None:
        shard_dbs = [
            Database({relation: part})
            for part in partition_relation(
                plan.start_db[relation], shards, scheme, key_index
            )
        ]
        if partitions is not None:
            partitions[key] = shard_dbs
    parts = [shard_db[relation] for shard_db in shard_dbs]
    protect_first = _contains_singleton(query_h) or _contains_singleton(
        query_m
    )
    hint = hints.get(relation) if hints is not None else None
    witnesses = getattr(hint, "witnesses", ())
    keep = shard_keep_mask(
        parts, condition, protect_first=protect_first, witnesses=witnesses
    )
    calls = tuple(
        (backend, query_h, query_m, shard_db, None, None)
        for shard_db, kept in zip(shard_dbs, keep)
        if kept
    )
    extra = None
    if extra_h is not None or extra_m is not None:
        empty = Relation.empty(base_schema)
        extra = shard_delta(
            extra_h if extra_h is not None else empty,
            extra_m if extra_m is not None else empty,
        )
    # Pre-built shards=1 escape hatch: shardable queries scan only their
    # own relation, so the fallback database is just that relation.
    fallback_call = (
        backend,
        query_h,
        query_m,
        Database({relation: plan.start_db[relation]}),
        extra_h,
        extra_m,
    )
    return RelationShardWork(
        relation,
        calls,
        extra,
        base_schema,
        True,
        len(parts),
        keep.count(False),
        fallback_call,
    )


def merge_relation_shards(
    work: RelationShardWork,
    outcomes: Sequence[tuple[ShardDelta, float]],
) -> tuple[RelationDelta, float]:
    """Merge a relation's shard outcomes into its delta + summed seconds."""
    triples = [outcome[0] for outcome in outcomes]
    if work.extra is not None and work.sharded:
        triples.append(work.extra)
    delta = merge_shard_deltas(triples, schema=work.schema)
    return delta, sum(outcome[1] for outcome in outcomes)


def evaluate_shard_works(
    works: Sequence[RelationShardWork],
    executor,
) -> list[tuple[RelationDelta, float]]:
    """Fan planned shard works out and merge them, preserving order.

    The shared dispatch core of the single-answer and batch paths:
    flatten every work's calls into one :func:`shard_pair_task` task
    list, run them over ``executor`` (serially when ``None``), and
    slice the outcomes back per work through
    :func:`merge_relation_shards`.

    Graceful degradation: a failed shard call does not fail the query.
    The affected relation falls back to its pre-built ``shards=1`` call,
    evaluated in-parent (``shard_fallback`` degradation event) — a
    deterministic evaluation error simply re-raises from the unsharded
    path, exactly as the sequential engine would have surfaced it, while
    a shard-infrastructure failure recovers.  Pool breakage is handled a
    layer below by the batch watchdog.
    """
    from .batch import _run_tasks_settled
    from .degradation import record_degradation

    calls = [call for work in works for call in work.calls]
    outcomes = _run_tasks_settled(executor, shard_pair_task, calls)
    results = []
    cursor = 0
    for work in works:
        slice_ = outcomes[cursor:cursor + len(work.calls)]
        cursor += len(work.calls)
        failures = [value for ok, value in slice_ if not ok]
        if not failures:
            for shard_index, (_, value) in enumerate(slice_):
                # Pool workers see no active trace; their timings come
                # back with the results and are attached here.
                trace.record_span(
                    "shard",
                    value[1],
                    relation=work.relation,
                    shard=shard_index,
                )
            with trace.span("merge", relation=work.relation):
                merged_pair = merge_relation_shards(
                    work, [value for _, value in slice_]
                )
            results.append(merged_pair)
            continue
        if work.fallback_call is None:
            # Already unsharded: nothing gentler to degrade to.
            raise failures[0]
        record_degradation("shard_fallback")
        triple, seconds = shard_pair_task(*work.fallback_call)
        trace.record_span(
            "shard", seconds, relation=work.relation, fallback=True
        )
        results.append(
            (merge_shard_deltas([triple], schema=work.schema), seconds)
        )
    return results


def evaluate_plan_sharded(
    plan,
    config,
    backend: str,
    executor=None,
    hints: Mapping | None = None,
) -> tuple[dict[str, RelationDelta], dict[str, dict]]:
    """Evaluate a reenactment plan's deltas shard-parallel.

    Drives every affected relation through
    :func:`plan_relation_shards` → :func:`evaluate_shard_works`,
    fanning the flattened shard tasks over a worker pool
    (``config.shard_workers`` > 1) or running them serially
    in-process.  ``executor`` lets the engine pass its cached pool
    (created and shut down by the caller); without one, a pool is
    created and torn down per call.  Returns the per-relation deltas
    plus per-relation shard statistics (``shards``/``evaluated``/
    ``skipped``/``sharded``) for inspection and tests.
    """
    from .batch import _make_executor

    partitions: dict = {}
    with trace.span("partition", shards=config.shards) as part_span:
        works = [
            plan_relation_shards(
                backend, plan, relation, config.shards,
                config.shard_scheme, partitions, hints,
            )
            for relation in sorted(plan.affected)
        ]
        for work in works:
            part_span.add_event(
                "route",
                relation=work.relation,
                shards=work.shard_count,
                evaluated=len(work.calls),
                skipped=work.skipped,
                sharded=work.sharded,
            )
    owned = None
    if executor is None:
        executor = owned = _make_executor(backend, config.shard_workers)
    try:
        with trace.span(
            "execute", mode="sharded", relations=len(works)
        ):
            merged = evaluate_shard_works(works, executor)
    finally:
        if owned is not None:
            owned.shutdown(cancel_futures=True)
    deltas: dict[str, RelationDelta] = {}
    stats: dict[str, dict] = {}
    for work, (delta, _) in zip(works, merged):
        deltas[work.relation] = delta
        stats[work.relation] = {
            "shards": work.shard_count,
            "evaluated": len(work.calls),
            "skipped": work.skipped,
            "sharded": work.sharded,
        }
    return deltas, stats
