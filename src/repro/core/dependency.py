"""Dependency-based program slicing (Section 9, Theorem 5).

Instead of the greedy candidate search, the optimized analysis asks a
cheaper per-statement question: can some possible world contain a tuple
affected *both* by a modified statement and by statement ``u_i``?  If no
such world exists (``¬ζ(H, M, u_i)`` unsatisfiable), ``u_i`` is
*independent* of the modification and excluded from reenactment.

The check for statement ``u_i`` (Definition 7, generalized to multiple
modifications) is satisfiability of::

    Φ_D ∧ Φ_defs ∧  ∨_{m ∈ M} [ (θ_m(t_{pos(m)-1})   ∧ θ_{u_i}(t_{i-1}))
                               ∨ (θ_m'(t'_{pos(m)-1}) ∧ θ'_{u_i}(t'_{i-1})) ]

where ``t_j`` / ``t'_j`` are the symbolic tuple versions after ``j``
statements of H / H[M] and Φ_defs are the defining equalities of the
symbolic runs.  The formula size is linear in the history length and
independent of the database size — the property that makes PS cost flat in
relation size (Figure 16).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping

from ..relational.database import Database
from ..relational.expressions import (
    Expr,
    FALSE,
    and_,
    or_,
    simplify,
    substitute_attributes,
)
from ..relational.schema import Schema
from ..relational.statements import (
    DeleteStatement,
    Statement,
    UpdateStatement,
)
from ..solver.sat import SolverConfig, check_satisfiable
from ..symbolic.compress import CompressionConfig, compress_relation
from ..symbolic.symexec import (
    prune_defining_conjuncts,
    run_history_single_tuple,
)
from ..symbolic.vctable import SymbolicTuple
from .hwq import AlignedHistories
from .program_slicing import ProgramSlicingConfig, SliceResult

__all__ = ["dependency_slice"]


def _condition_over(stmt: Statement, symbolic_tuple: SymbolicTuple) -> Expr:
    """``θ_u(t)``: the statement's condition bound to a symbolic tuple.

    Statements without a condition in the usual sense (constant inserts)
    affect no existing tuple, hence FALSE.
    """
    if isinstance(stmt, (UpdateStatement, DeleteStatement)):
        return substitute_attributes(
            stmt.condition, dict(symbolic_tuple.values)
        )
    return FALSE


def dependency_slice(
    aligned: AlignedHistories,
    database: Database,
    schemas: Mapping[str, Schema],
    config: ProgramSlicingConfig | None = None,
) -> SliceResult:
    """Compute a slice via the dependency condition of Definition 7.

    Modified statements are always kept; every other statement targeting
    an affected relation is kept iff the dependency formula is satisfiable
    (or the solver cannot decide — conservative).  Statements on relations
    without modifications are excluded, as in :func:`greedy_slice`.
    """
    config = config or ProgramSlicingConfig()
    n = len(aligned)
    modified_positions = set(aligned.modified_positions)
    affected_relations = aligned.target_relations_of_modifications()

    kept: set[int] = set(modified_positions)
    solver_calls = 0
    solver_seconds = 0.0

    for relation in sorted(affected_relations):
        schema = schemas[relation]
        input_tuple = SymbolicTuple.fresh(schema, prefix=f"dep_{relation}")
        phi_d = compress_relation(
            database[relation], input_tuple, config.compression
        )
        run_h = run_history_single_tuple(
            aligned.original, relation, schema, input_tuple,
            prefix=f"dh_{relation}",
        )
        run_m = run_history_single_tuple(
            aligned.modified, relation, schema, input_tuple,
            prefix=f"dm_{relation}",
        )
        defs = list(run_h.global_conjuncts) + list(run_m.global_conjuncts)

        # "affected by some modification": the tuple's trajectories can
        # diverge between H and H[M].  For update-style pairs this is the
        # Eq.-7 disjunction theta_u OR theta_u' over the tuple version just
        # before the modified statement, in either history.  For
        # delete/delete pairs we use the Section-6 survivor refinement: an
        # H-side tuple matters when it survives u but u' would have deleted
        # it (and symmetrically), which the post-statement local condition
        # plus the *other* statement's condition expresses.
        mod_affected: list[Expr] = []
        for position in sorted(modified_positions):
            u = aligned.original[position]
            u_prime = aligned.modified[position]
            if u.relation != relation and u_prime.relation != relation:
                continue
            both_deletes = isinstance(u, DeleteStatement) and isinstance(
                u_prime, DeleteStatement
            )
            if both_deletes:
                tuple_h_before, _ = run_h.steps[position - 1]
                tuple_m_before, _ = run_m.steps[position - 1]
                _, local_h_after = run_h.steps[position]
                _, local_m_after = run_m.steps[position]
                mod_affected.append(
                    and_(
                        local_h_after,
                        _condition_over(u_prime, tuple_h_before),
                    )
                )
                mod_affected.append(
                    and_(
                        local_m_after,
                        _condition_over(u, tuple_m_before),
                    )
                )
            else:
                tuple_h, local_h = run_h.steps[position - 1]
                tuple_m, local_m = run_m.steps[position - 1]
                mod_affected.append(
                    and_(
                        local_h,
                        or_(
                            _condition_over(u, tuple_h),
                            _condition_over(u_prime, tuple_h),
                        ),
                    )
                )
                mod_affected.append(
                    and_(
                        local_m,
                        or_(
                            _condition_over(u, tuple_m),
                            _condition_over(u_prime, tuple_m),
                        ),
                    )
                )
        affected_any = or_(*mod_affected) if mod_affected else FALSE

        for position in range(1, n + 1):
            if position in modified_positions:
                continue
            stmt = aligned.original[position]
            if stmt.relation != relation:
                continue
            tuple_h, local_h = run_h.steps[position - 1]
            tuple_m, local_m = run_m.steps[position - 1]
            touches_h = and_(local_h, _condition_over(stmt, tuple_h))
            touches_m = and_(local_m, _condition_over(stmt, tuple_m))
            core = and_(affected_any, or_(touches_h, touches_m))
            from ..relational.expressions import variables_of

            needed = variables_of(core) | variables_of(phi_d)
            relevant = prune_defining_conjuncts(defs, needed)
            formula = and_(phi_d, *relevant, core)

            start = time.perf_counter()
            result = check_satisfiable(simplify(formula), config.solver)
            solver_seconds += time.perf_counter() - start
            solver_calls += 1
            if not result.is_unsat:
                kept.add(position)

    return SliceResult(
        kept_positions=tuple(sorted(kept)),
        total_positions=n,
        solver_calls=solver_calls,
        solver_seconds=solver_seconds,
    )
