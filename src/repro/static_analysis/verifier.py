"""Static plan verifier: schema resolution + lattice typing over operator trees.

:func:`verify_plan` walks a :class:`~repro.relational.algebra.Operator`
tree once, threading a schema and an attribute -> :class:`~repro.
static_analysis.lattice.AbstractType` environment through every
operator, and returns the list of :class:`Violation`\\ s it can *prove*
— it never rejects a plan merely because types are unknown (schemas in
this codebase default every column to the advisory tag ``"any"``).

Checked rules (IDs appear in diagnostics and DESIGN.md):

``unknown-relation``     a ``RelScan`` of a relation absent from the database
``unresolved-attribute`` an ``Attr`` not bound by the operator's input schema
``unbound-variable``     a symbolic ``Var`` in an executable plan
``bad-constant``         a ``Const``/``Singleton`` value outside the domain
``duplicate-output``     duplicate output names in a projection
``arity-mismatch``       union/difference sides of different arity
``name-mismatch``        union/difference sides with different attribute names
``join-name-clash``      join sides sharing attribute names
``non-condition``        a select/join/``If`` condition that provably cannot
                         be boolean (e.g. bare arithmetic)
``bad-arith-operand``    arithmetic over a provably non-numeric operand
``incomparable``         an ordered comparison between provably
                         incomparable kinds (e.g. ``1 < 'a'``)
``reserved-attribute``   an attribute colliding with the bag encoding's
                         hidden multiplicity column (bag semantics, and
                         the sqlite backend under either semantics)

Every violation carries an *operator path* from the root — e.g.
``Union.left.Select.condition`` — so a failing reenactment plan pinpoints
the offending node without dumping the whole tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..relational.algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from ..relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    Var,
)
from ..relational.schema import Schema, SchemaError
from .lattice import (
    AbstractType,
    NULL_TYPE,
    TOP,
    TypeEnv,
    abstract_of_type_tag,
    abstract_of_value,
    is_condition_like,
    join,
    ordered_comparable,
)

__all__ = [
    "Violation",
    "PlanVerificationError",
    "infer_expr_type",
    "verify_condition",
    "verify_plan",
    "verify_plan_or_raise",
    "verify_reenactment_plans",
]


@dataclass(frozen=True)
class Violation:
    """One provable defect, anchored to an operator/expression path."""

    rule: str
    path: str
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] at {self.path}: {self.message}"


class PlanVerificationError(Exception):
    """Raised by the ``*_or_raise`` entry points; carries the violations."""

    def __init__(self, violations: list[Violation], context: str = "") -> None:
        self.violations = tuple(violations)
        lines = [f"plan verification failed ({len(violations)} violation(s))"]
        if context:
            lines[0] += f" for {context}"
        lines.extend(f"  - {v}" for v in violations)
        super().__init__("\n".join(lines))


# -- expression typing -------------------------------------------------------

def infer_expr_type(
    expr: Expr,
    env: TypeEnv,
    violations: list[Violation],
    path: str,
    *,
    allow_vars: bool = False,
) -> AbstractType:
    """Infer the abstract type of ``expr`` under ``env``, appending any
    provable defects to ``violations``.  Always returns a type (``TOP``
    after an unrecoverable leaf error) so one bad leaf yields one
    violation, not a cascade."""
    if isinstance(expr, Const):
        abstract = abstract_of_value(expr.value)
        if abstract is None:
            violations.append(
                Violation(
                    "bad-constant",
                    path,
                    f"constant {expr.value!r} of type "
                    f"{type(expr.value).__name__} is outside the value "
                    "domain (None | bool | int | float | str)",
                )
            )
            return TOP
        return abstract
    if isinstance(expr, Attr):
        abstract = env.get(expr.name)
        if abstract is None:
            known = ", ".join(sorted(env)) or "<empty schema>"
            violations.append(
                Violation(
                    "unresolved-attribute",
                    path,
                    f"attribute {expr.name!r} is not produced by the "
                    f"input (available: {known})",
                )
            )
            return TOP
        return abstract
    if isinstance(expr, Var):
        if not allow_vars:
            violations.append(
                Violation(
                    "unbound-variable",
                    path,
                    f"symbolic variable ${expr.name} in an executable "
                    "plan (Vars are only legal during symbolic "
                    "execution)",
                )
            )
        return TOP
    if isinstance(expr, Arith):
        left = infer_expr_type(
            expr.left, env, violations, f"{path}.left",
            allow_vars=allow_vars,
        )
        right = infer_expr_type(
            expr.right, env, violations, f"{path}.right",
            allow_vars=allow_vars,
        )
        for side, abstract in (("left", left), ("right", right)):
            if abstract.provably_non_numeric():
                violations.append(
                    Violation(
                        "bad-arith-operand",
                        f"{path}.{side}",
                        f"{side} operand of {expr.op!r} can only be "
                        f"{sorted(abstract.kinds)} — arithmetic needs a "
                        "numeric (or NULL) operand",
                    )
                )
        if left.is_definitely_null or right.is_definitely_null:
            return NULL_TYPE
        nullable = left.nullable or right.nullable
        if expr.op == "/":
            # x / 0 evaluates to NULL, so a division is nullable unless
            # the denominator provably is a non-zero non-NULL constant.
            nullable = nullable or right.maybe_zero
            kinds = frozenset({"float"})
        else:
            kinds = frozenset({"int", "float"})
        return AbstractType(kinds, nullable)
    if isinstance(expr, Cmp):
        left = infer_expr_type(
            expr.left, env, violations, f"{path}.left",
            allow_vars=allow_vars,
        )
        right = infer_expr_type(
            expr.right, env, violations, f"{path}.right",
            allow_vars=allow_vars,
        )
        if expr.op not in ("=", "!=") and not ordered_comparable(left, right):
            violations.append(
                Violation(
                    "incomparable",
                    path,
                    f"ordered comparison {expr.op!r} between kinds "
                    f"{sorted(left.kinds)} and {sorted(right.kinds)} "
                    "always raises at runtime",
                )
            )
        # Two-valued logic: comparisons never yield NULL (a NULL operand
        # makes them False), so the result is a non-nullable bool.
        return AbstractType(frozenset({"bool"}), False)
    if isinstance(expr, Logic):
        infer_expr_type(
            expr.left, env, violations, f"{path}.left",
            allow_vars=allow_vars,
        )
        infer_expr_type(
            expr.right, env, violations, f"{path}.right",
            allow_vars=allow_vars,
        )
        return AbstractType(frozenset({"bool"}), False)
    if isinstance(expr, Not):
        infer_expr_type(
            expr.operand, env, violations, f"{path}.operand",
            allow_vars=allow_vars,
        )
        return AbstractType(frozenset({"bool"}), False)
    if isinstance(expr, IsNull):
        infer_expr_type(
            expr.operand, env, violations, f"{path}.operand",
            allow_vars=allow_vars,
        )
        return AbstractType(frozenset({"bool"}), False)
    if isinstance(expr, If):
        verify_condition(
            expr.cond, env, violations, f"{path}.cond",
            allow_vars=allow_vars,
        )
        then = infer_expr_type(
            expr.then, env, violations, f"{path}.then",
            allow_vars=allow_vars,
        )
        orelse = infer_expr_type(
            expr.orelse, env, violations, f"{path}.orelse",
            allow_vars=allow_vars,
        )
        return join(then, orelse)
    violations.append(
        Violation(
            "bad-constant", path, f"unknown expression node {expr!r}"
        )
    )
    return TOP


def verify_condition(
    cond: Expr,
    env: TypeEnv,
    violations: list[Violation],
    path: str,
    *,
    allow_vars: bool = False,
) -> None:
    """Type-check ``cond`` and require it to be condition-shaped."""
    if not is_condition_like(cond):
        violations.append(
            Violation(
                "non-condition",
                path,
                f"expression {cond} provably cannot be boolean-valued",
            )
        )
    infer_expr_type(cond, env, violations, path, allow_vars=allow_vars)


# -- plan verification -------------------------------------------------------

def _env_of_schema(schema: Schema) -> TypeEnv:
    return {
        name: abstract_of_type_tag(schema.type_of(name))
        for name in schema.attributes
    }


def _reserved_columns() -> frozenset[str]:
    from ..relational.exec.sqlite_sql import RESERVED_COLUMNS

    return RESERVED_COLUMNS


def verify_plan(
    op: Operator,
    schemas: Mapping[str, Schema],
    *,
    semantics: str = "set",
    allow_vars: bool = False,
) -> list[Violation]:
    """Statically verify an operator tree against base-relation schemas.

    ``semantics`` is ``"set"`` or ``"bag"``: under bag semantics the
    encoding threads a hidden multiplicity column through every operator
    (see DESIGN.md, "Execution backends"), so attribute names colliding
    with it are additionally illegal (``reserved-attribute``).
    ``allow_vars`` permits symbolic :class:`Var` leaves (symbolic
    execution verifies against its own binding discipline).

    Returns all provable violations; an empty list certifies the plan
    well-formed on the lattice.
    """
    if semantics not in ("set", "bag"):
        raise ValueError(f"unknown semantics {semantics!r}")
    violations: list[Violation] = []
    reserved = _reserved_columns() if semantics == "bag" else frozenset()

    def check_schema(schema: Schema, path: str) -> None:
        clashes = reserved.intersection(schema.attributes)
        if clashes:
            violations.append(
                Violation(
                    "reserved-attribute",
                    path,
                    f"attribute(s) {sorted(clashes)} collide with the "
                    "bag encoding's hidden multiplicity column",
                )
            )

    def visit(node: Operator, path: str) -> tuple[Schema, TypeEnv] | None:
        """Returns (schema, env) of the node's output, or ``None`` when
        a structural error below makes them unknowable."""
        if isinstance(node, RelScan):
            schema = schemas.get(node.name)
            if schema is None:
                known = ", ".join(sorted(schemas)) or "<none>"
                violations.append(
                    Violation(
                        "unknown-relation",
                        path,
                        f"relation {node.name!r} does not exist "
                        f"(known: {known})",
                    )
                )
                return None
            check_schema(schema, path)
            return schema, _env_of_schema(schema)
        if isinstance(node, Singleton):
            check_schema(node.schema, path)
            env: TypeEnv = {}
            for name, value in zip(node.schema.attributes, node.row):
                abstract = abstract_of_value(value)
                if abstract is None:
                    violations.append(
                        Violation(
                            "bad-constant",
                            f"{path}.row[{name}]",
                            f"singleton value {value!r} of type "
                            f"{type(value).__name__} is outside the "
                            "value domain",
                        )
                    )
                    abstract = TOP
                env[name] = abstract
            return node.schema, env
        if isinstance(node, Project):
            below = visit(node.input, f"{path}.Project.input")
            names = tuple(name for _, name in node.outputs)
            if len(set(names)) != len(names):
                violations.append(
                    Violation(
                        "duplicate-output",
                        f"{path}.Project",
                        f"duplicate output names: {list(names)}",
                    )
                )
                return None
            out_env: TypeEnv = {}
            if below is not None:
                _, env = below
                for expr, name in node.outputs:
                    out_env[name] = infer_expr_type(
                        expr,
                        env,
                        violations,
                        f"{path}.Project[{name}]",
                        allow_vars=allow_vars,
                    )
            else:
                out_env = {name: TOP for name in names}
            out_schema = Schema(names)
            check_schema(out_schema, f"{path}.Project")
            return out_schema, out_env
        if isinstance(node, Select):
            below = visit(node.input, f"{path}.Select.input")
            if below is None:
                return None
            schema, env = below
            verify_condition(
                node.condition,
                env,
                violations,
                f"{path}.Select.condition",
                allow_vars=allow_vars,
            )
            return schema, env
        if isinstance(node, (Union, Difference)):
            kind = "Union" if isinstance(node, Union) else "Difference"
            left = visit(node.left, f"{path}.{kind}.left")
            right = visit(node.right, f"{path}.{kind}.right")
            if left is None or right is None:
                return None
            (ls, le), (rs, re) = left, right
            if ls.arity != rs.arity:
                violations.append(
                    Violation(
                        "arity-mismatch",
                        f"{path}.{kind}",
                        f"left arity {ls.arity} != right arity {rs.arity}",
                    )
                )
                return None
            if ls.attributes != rs.attributes:
                violations.append(
                    Violation(
                        "name-mismatch",
                        f"{path}.{kind}",
                        f"left attributes {ls.attributes} != right "
                        f"attributes {rs.attributes}",
                    )
                )
                return None
            env = {name: join(le[name], re[name]) for name in ls.attributes}
            return ls, env
        if isinstance(node, Join):
            left = visit(node.left, f"{path}.Join.left")
            right = visit(node.right, f"{path}.Join.right")
            if left is None or right is None:
                return None
            (ls, le), (rs, re) = left, right
            clashes = set(ls.attributes) & set(rs.attributes)
            if clashes:
                violations.append(
                    Violation(
                        "join-name-clash",
                        f"{path}.Join",
                        f"sides share attribute name(s) {sorted(clashes)}",
                    )
                )
                return None
            try:
                schema = ls.concat(rs)
            except SchemaError as exc:
                violations.append(
                    Violation("join-name-clash", f"{path}.Join", str(exc))
                )
                return None
            env = dict(le)
            env.update(re)
            verify_condition(
                node.condition,
                env,
                violations,
                f"{path}.Join.condition",
                allow_vars=allow_vars,
            )
            return schema, env
        violations.append(
            Violation(
                "unknown-relation", path, f"unknown operator {node!r}"
            )
        )
        return None

    visit(op, "$")
    return violations


def verify_plan_or_raise(
    op: Operator,
    schemas: Mapping[str, Schema],
    *,
    semantics: str = "set",
    allow_vars: bool = False,
    context: str = "",
) -> None:
    """:func:`verify_plan`, raising :class:`PlanVerificationError`."""
    violations = verify_plan(
        op, schemas, semantics=semantics, allow_vars=allow_vars
    )
    if violations:
        raise PlanVerificationError(violations, context)


def verify_reenactment_plans(
    schemas: Mapping[str, Schema],
    queries_original: Mapping[str, Operator],
    queries_modified: Mapping[str, Operator],
    *,
    before_original: Mapping[str, Operator] | None = None,
    before_modified: Mapping[str, Operator] | None = None,
    semantics: str = "set",
) -> None:
    """Engine hook: verify every reenactment query of an answer, and —
    when the pre-optimization trees are supplied — certify the optimizer
    output equivalent to its input (:func:`~repro.static_analysis.
    rewrite_check.check_rewrite`).

    Raises :class:`PlanVerificationError` naming the relation and side
    (``original``/``modified``) of the first offending plan.
    """
    from .rewrite_check import RewriteUnsoundError, check_rewrite

    for side, queries, before in (
        ("original", queries_original, before_original),
        ("modified", queries_modified, before_modified),
    ):
        for relation, plan in queries.items():
            verify_plan_or_raise(
                plan,
                schemas,
                semantics=semantics,
                context=f"reenactment of {relation!r} ({side} history)",
            )
            if before is not None and relation in before:
                try:
                    check_rewrite(before[relation], plan, schemas)
                except RewriteUnsoundError as exc:
                    raise PlanVerificationError(
                        [
                            Violation(
                                "unsound-rewrite",
                                "$",
                                str(exc),
                            )
                        ],
                        f"optimized reenactment of {relation!r} "
                        f"({side} history)",
                    ) from exc
