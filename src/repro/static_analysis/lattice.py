"""NULL-aware abstract type lattice for the expression IR.

The runtime value domain of the expression language
(:mod:`repro.relational.expressions`) is ``None | bool | int | float |
str`` with two-valued logic: a NULL operand makes every comparison
evaluate to ``False`` and propagates through arithmetic as ``None``.
The static verifier abstracts a value as a point of the lattice

    ``AbstractType(kinds, nullable)``

where ``kinds`` is the set of *possible non-NULL runtime kinds* (a
subset of ``{"int", "float", "bool", "str"}``) and ``nullable`` records
whether the value may be NULL — the "third value" of the three-valued
lattice.  ``TOP`` (all kinds, nullable) abstracts a value nothing is
known about; ``NULL_TYPE`` (no kinds, nullable) abstracts a value that
is provably NULL.  The partial order is componentwise: ``a <= b`` iff
``a.kinds <= b.kinds`` and ``a.nullable <= b.nullable``; ``join`` is the
least upper bound.

The verifier only rejects *provable* errors: an operand is flagged for
arithmetic only when its possible kinds are non-empty and disjoint from
the numeric kinds, an ordered comparison only when the two sides'
possible kinds provably belong to incomparable groups.  Schemas in this
codebase carry advisory type tags that default to ``"any"`` (= ``TOP``),
so anything more eager would reject working plans.

Nullability is what makes the lattice catch the PR-2 rewrite bugs
statically: ``x * 0`` has a *nullable* abstract type (NULL·0 = NULL)
while the replacement ``0`` is non-nullable, so the fold is rejected on
the lattice alone — see :mod:`repro.static_analysis.rewrite_check`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    Var,
)

__all__ = [
    "AbstractType",
    "ALL_KINDS",
    "NUMERIC_KINDS",
    "TOP",
    "NULL_TYPE",
    "BOOL",
    "INT",
    "FLOAT",
    "STR",
    "join",
    "abstract_of_value",
    "abstract_of_type_tag",
    "is_condition_like",
    "TypeEnv",
]

#: Every concrete non-NULL runtime kind of the value domain.
ALL_KINDS: frozenset[str] = frozenset({"int", "float", "bool", "str"})

#: Kinds legal as arithmetic operands (``bool`` coerces: True + 1 == 2,
#: matching both the interpreter and sqlite's integer affinity).
NUMERIC_KINDS: frozenset[str] = frozenset({"int", "float", "bool"})

#: Schema type tags understood by :func:`abstract_of_type_tag`.  Tags
#: outside this table (including the default ``"any"``) map to ``TOP``.
_TAG_KINDS: dict[str, frozenset[str]] = {
    "int": frozenset({"int"}),
    "float": frozenset({"float"}),
    "num": frozenset({"int", "float"}),
    "bool": frozenset({"bool"}),
    "str": frozenset({"str"}),
}


@dataclass(frozen=True)
class AbstractType:
    """One point of the lattice: possible kinds plus a nullability bit.

    ``maybe_zero`` is a refinement used only for division: a denominator
    that provably cannot be zero (a non-zero constant) keeps constant
    folding of ``c1 / c2`` certifiable, because ``x / 0`` evaluates to
    NULL at runtime and would otherwise force every division nullable.
    It does not participate in the partial order.
    """

    kinds: frozenset[str]
    nullable: bool
    maybe_zero: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        unknown = self.kinds - ALL_KINDS
        if unknown:
            raise ValueError(f"unknown kinds {sorted(unknown)}")

    # -- lattice structure -------------------------------------------------
    def leq(self, other: "AbstractType") -> bool:
        """Partial order: componentwise containment."""
        return self.kinds <= other.kinds and self.nullable <= other.nullable

    @property
    def is_definitely_null(self) -> bool:
        return not self.kinds and self.nullable

    def maybe(self, kind: str) -> bool:
        """May this value hold a non-NULL value of ``kind`` at runtime?"""
        return kind in self.kinds

    def maybe_numeric(self) -> bool:
        """May this value be a non-NULL arithmetic operand?"""
        return bool(self.kinds & NUMERIC_KINDS)

    def provably_non_numeric(self) -> bool:
        """True when every possible non-NULL kind is non-numeric.

        A definitely-NULL value is *not* provably non-numeric: NULL is a
        legal arithmetic operand (the result is NULL, never an error).
        """
        return bool(self.kinds) and not self.kinds & NUMERIC_KINDS


TOP = AbstractType(ALL_KINDS, True)
NULL_TYPE = AbstractType(frozenset(), True)
BOOL = AbstractType(frozenset({"bool"}), False)
INT = AbstractType(frozenset({"int"}), False)
FLOAT = AbstractType(frozenset({"float"}), False)
STR = AbstractType(frozenset({"str"}), False)

#: Attribute-name -> abstract-type environment for one operator's input.
TypeEnv = dict[str, AbstractType]


def join(left: AbstractType, right: AbstractType) -> AbstractType:
    """Least upper bound of two lattice points."""
    return AbstractType(
        left.kinds | right.kinds,
        left.nullable or right.nullable,
        maybe_zero=left.maybe_zero or right.maybe_zero,
    )


def abstract_of_value(value: Any) -> AbstractType | None:
    """Abstract a concrete constant; ``None`` when the value lies outside
    the domain (the verifier reports those as violations)."""
    if value is None:
        return NULL_TYPE
    if isinstance(value, bool):  # before int: bool is an int subclass
        return AbstractType(
            frozenset({"bool"}), False, maybe_zero=not value
        )
    if isinstance(value, int):
        return AbstractType(
            frozenset({"int"}), False, maybe_zero=value == 0
        )
    if isinstance(value, float):
        return AbstractType(
            frozenset({"float"}), False, maybe_zero=value == 0.0
        )
    if isinstance(value, str):
        return STR
    return None


def abstract_of_type_tag(tag: str) -> AbstractType:
    """Abstract a schema type tag.  Tags are advisory (columns may hold
    NULL regardless), so every tag is nullable; unknown tags and the
    default ``"any"`` are ``TOP``."""
    kinds = _TAG_KINDS.get(tag, ALL_KINDS)
    return AbstractType(kinds, True)


def ordered_comparable(left: AbstractType, right: AbstractType) -> bool:
    """May ``left < right`` evaluate without a runtime type error?

    Runtime raises on e.g. ``1 < "a"``; a NULL operand short-circuits to
    ``False`` first, so a definitely-NULL side is always comparable.
    Kinds are comparable within the numeric group and within ``str``.
    """
    if not left.kinds or not right.kinds:
        return True  # a provably-NULL side never reaches the comparison
    if left.kinds & NUMERIC_KINDS and right.kinds & NUMERIC_KINDS:
        return True
    return "str" in left.kinds and "str" in right.kinds


def is_condition_like(expr: Expr) -> bool:
    """Structural check that an expression can serve as a condition.

    Stricter than :func:`repro.relational.expressions.is_condition` in
    that it recurses, but still permissive at leaves: an ``Attr``/``Var``
    may be bound to a boolean at runtime, so only shapes that *provably*
    produce a non-boolean (bare arithmetic, non-boolean constants) are
    rejected.
    """
    if isinstance(expr, (Cmp, Logic, Not, IsNull)):
        return True
    if isinstance(expr, Const):
        return isinstance(expr.value, bool) or expr.value is None
    if isinstance(expr, (Attr, Var)):
        return True
    if isinstance(expr, If):
        return is_condition_like(expr.then) and is_condition_like(
            expr.orelse
        )
    if isinstance(expr, Arith):
        return False
    return False
