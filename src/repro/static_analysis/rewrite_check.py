"""NULL-soundness certification of expression and plan rewrites.

``check_expr_rewrite(before, after)`` certifies that an optimizer's
expression rewrite preserves semantics, and ``check_rewrite(before,
after, schemas)`` does the same for whole operator trees.  Both combine
two passes:

1. **Lattice filter** — infer the abstract types of both sides on the
   NULL-aware lattice (:mod:`repro.static_analysis.lattice`).  A rewrite
   whose result kinds are provably disjoint from the original's, or that
   replaces a *nullable* expression with a provably non-NULL one, is
   rejected outright.  This alone kills ``x * 0 -> 0``: the left side is
   nullable (``NULL * 0`` is ``NULL``) while the literal ``0`` is not.
2. **Witness differential** — evaluate both sides under a small,
   deterministic family of witness bindings drawn from the value domain,
   **always including the all-NULL binding** (the two-valued logic makes
   it total: comparisons go ``False``, arithmetic goes ``NULL``, so NULL
   soundness is always exercised even when typed witnesses error out on
   mixed-kind comparisons).  Any observable difference rejects the
   rewrite; bindings on which either side raises are skipped (optimizers
   may legitimately change *error* behavior — e.g. constant-fold an
   expression a pathological tuple would have crashed — and the runtime
   differential fuzzers own error parity).  ``x = x -> TRUE`` and
   ``NOT (a < b) -> a >= b`` both fall to the all-NULL witness:
   ``NULL = NULL`` is ``False``, not ``True``, and ``NOT (NULL < b)`` is
   ``True`` while ``NULL >= b`` is ``False``.

This is a *bounded refutation procedure*, not a proof of equivalence: a
rejection is always justified (a concrete witness or a lattice
contradiction), an acceptance means "no difference found on the lattice
or the witness family".  The runtime differential fuzz suites remain the
completeness backstop.

Certification results are memoized on the structural identity of the
``(before, after)`` pair — expression and operator trees are frozen
dataclasses, hence hashable — so the engine's per-answer certification
of its (cached, highly repetitive) reenactment plans stays cheap.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterator, Mapping

from ..relational.algebra import (
    Operator,
    base_relations,
    evaluate_query_interpreted,
    output_schema,
)
from ..relational.database import Database
from ..relational.expressions import (
    EvaluationError,
    Expr,
    attributes_of,
    evaluate,
)
from ..relational.relation import Relation
from ..relational.schema import Schema, SchemaError
from .lattice import TypeEnv, abstract_of_type_tag
from .verifier import Violation, infer_expr_type

__all__ = [
    "RewriteUnsoundError",
    "check_expr_rewrite",
    "check_rewrite",
    "certify_optimizer_rules",
]

#: Witness values for typed bindings: every kind of the domain, both
#: truthinesses, zero/non-zero, empty/non-empty.
_NUMERIC_WITNESSES: tuple[Any, ...] = (None, 0, 1, -1, 2, True, 2.5)
_TEXT_WITNESSES: tuple[Any, ...] = (None, "", "a", "b")

#: Beyond this many free attributes the full witness product explodes;
#: fall back to a deterministic diagonal sample of this many bindings.
_MAX_PRODUCT_ATTRS = 3
_SAMPLE_BINDINGS = 64

_CACHE_LIMIT = 4096
_cache_lock = threading.Lock()
_expr_cache: dict[tuple[Expr, Expr], str | None] = {}
_plan_cache: dict[Any, str | None] = {}


class RewriteUnsoundError(Exception):
    """A rewrite changed observable semantics; the message names the
    witness binding (or lattice contradiction) that refutes it."""


def _bounded_put(cache: dict, key: Any, value: str | None) -> None:
    with _cache_lock:
        if len(cache) >= _CACHE_LIMIT:
            cache.clear()
        cache[key] = value


def _witness_bindings(names: tuple[str, ...]) -> Iterator[dict[str, Any]]:
    """Deterministic witness bindings over ``names``.

    Always starts with the all-NULL binding (total under two-valued
    logic), then enumerates the numeric and text pools — the full
    product for small attribute counts, a seedless diagonal stripe
    otherwise (determinism keeps certification reproducible and
    memoizable).
    """
    yield {name: None for name in names}
    if not names:
        return
    for pool in (_NUMERIC_WITNESSES, _TEXT_WITNESSES):
        if len(names) <= _MAX_PRODUCT_ATTRS:
            for values in itertools.product(pool, repeat=len(names)):
                yield dict(zip(names, values))
        else:
            for offset in range(_SAMPLE_BINDINGS):
                yield {
                    name: pool[(offset + 3 * i) % len(pool)]
                    for i, name in enumerate(names)
                }


def _lattice_filter(
    before: Expr, after: Expr, env: TypeEnv
) -> str | None:
    """Reject on a provable lattice contradiction; ``None`` = pass."""
    sink: list[Violation] = []
    t_before = infer_expr_type(before, env, sink, "$", allow_vars=True)
    t_after = infer_expr_type(after, env, sink, "$", allow_vars=True)
    if (
        t_before.kinds
        and t_after.kinds
        and not t_before.kinds & t_after.kinds
        and not (t_before.nullable and t_after.nullable)
    ):
        return (
            f"result kinds changed from {sorted(t_before.kinds)} to "
            f"{sorted(t_after.kinds)} with no overlap"
        )
    if t_before.nullable and not t_after.nullable:
        return (
            "rewrite replaces a nullable expression with a provably "
            "non-NULL one (e.g. the unsound x * 0 -> 0: NULL * 0 is "
            "NULL, not 0)"
        )
    return None


def check_expr_rewrite(
    before: Expr,
    after: Expr,
    env: TypeEnv | None = None,
) -> None:
    """Certify an expression rewrite; raises :class:`RewriteUnsoundError`.

    ``env`` optionally narrows the free attributes' abstract types for
    the lattice filter (defaults to ``TOP`` for every free attribute).
    """
    key = (before, after)
    try:
        with _cache_lock:
            cached = _expr_cache.get(key, False)
    except TypeError:  # unhashable constant embedded in a tree
        cached = False
        key = None
    if cached is not False:
        if cached is not None:
            raise RewriteUnsoundError(cached)
        return
    failure = _check_expr_rewrite_uncached(before, after, env)
    if key is not None:
        _bounded_put(_expr_cache, key, failure)
    if failure is not None:
        raise RewriteUnsoundError(failure)


def _check_expr_rewrite_uncached(
    before: Expr, after: Expr, env: TypeEnv | None
) -> str | None:
    names = tuple(sorted(attributes_of(before) | attributes_of(after)))
    if env is None:
        env = {}
    full_env = {
        name: env.get(name, abstract_of_type_tag("any")) for name in names
    }
    failure = _lattice_filter(before, after, full_env)
    if failure is not None:
        return f"expression rewrite {before} -> {after} rejected: {failure}"
    for binding in _witness_bindings(names):
        try:
            got_before = evaluate(before, binding)
        except (EvaluationError, ArithmeticError, TypeError):
            continue
        try:
            got_after = evaluate(after, binding)
        except (EvaluationError, ArithmeticError, TypeError):
            continue
        if got_before != got_after:
            return (
                f"expression rewrite {before} -> {after} is unsound: "
                f"under {binding!r} the original evaluates to "
                f"{got_before!r} but the rewrite to {got_after!r}"
            )
    return None


# -- operator-tree rewrites --------------------------------------------------

def _witness_database(
    schemas: Mapping[str, Schema], relations: frozenset[str]
) -> list[Database]:
    """Three tiny databases over ``relations``: all-NULL rows (total
    under two-valued logic — the guaranteed NULL-soundness probe), then
    numeric-valued and text-valued rows."""
    databases = []
    for pool in ((None,), _NUMERIC_WITNESSES, _TEXT_WITNESSES):
        contents = {}
        for name in sorted(relations):
            schema = schemas[name]
            rows = {
                tuple(
                    pool[(offset + i) % len(pool)]
                    for i in range(schema.arity)
                )
                for offset in range(len(pool) + 1)
            }
            contents[name] = Relation(schema, frozenset(rows))
        databases.append(Database(contents))
    return databases


def _plan_key(
    before: Operator, after: Operator, schemas: Mapping[str, Schema]
) -> Any:
    return (before, after, tuple(sorted(schemas.items())))


def check_rewrite(
    before: Operator,
    after: Operator,
    schemas: Mapping[str, Schema],
) -> None:
    """Certify an operator-tree rewrite (e.g. one optimizer run) sound.

    Requires the rewritten tree to keep the output schema of the
    original, then differentially evaluates both trees (reference
    interpreter, set semantics) over deterministic witness databases —
    always including an all-NULL one, so every NULL-propagation bug in a
    rewrite rule is observable.  Raises :class:`RewriteUnsoundError`
    with the refuting database; memoized structurally.
    """
    key: Any = _plan_key(before, after, schemas)
    try:
        with _cache_lock:
            cached = _plan_cache.get(key, False)
    except TypeError:
        cached = False
        key = None
    if cached is not False:
        if cached is not None:
            raise RewriteUnsoundError(cached)
        return
    failure = _check_rewrite_uncached(before, after, schemas)
    if key is not None:
        _bounded_put(_plan_cache, key, failure)
    if failure is not None:
        raise RewriteUnsoundError(failure)


def _check_rewrite_uncached(
    before: Operator, after: Operator, schemas: Mapping[str, Schema]
) -> str | None:
    db_schemas = dict(schemas)
    try:
        schema_before = output_schema(before, db_schemas)
        schema_after = output_schema(after, db_schemas)
    except (SchemaError, TypeError) as exc:
        return f"plan rewrite is not schema-checkable: {exc}"
    if schema_before.attributes != schema_after.attributes:
        return (
            f"plan rewrite changed the output schema from "
            f"{schema_before.attributes} to {schema_after.attributes}"
        )
    relations = frozenset(
        base_relations(before) | base_relations(after)
    ) & frozenset(db_schemas)
    for db in _witness_database(db_schemas, relations):
        try:
            got_before = evaluate_query_interpreted(before, db)
        except (EvaluationError, ArithmeticError, TypeError, SchemaError):
            continue
        try:
            got_after = evaluate_query_interpreted(after, db)
        except (EvaluationError, ArithmeticError, TypeError, SchemaError):
            continue
        if got_before.tuples != got_after.tuples:
            only_before = got_before.tuples - got_after.tuples
            only_after = got_after.tuples - got_before.tuples
            return (
                "plan rewrite is unsound on a witness database: "
                f"rows only in the original: {sorted(only_before, key=repr)[:3]!r}; "
                f"rows only in the rewrite: {sorted(only_after, key=repr)[:3]!r} "
                f"(over {sorted(relations)})"
            )
    return None


def certify_optimizer_rules(
    op: Operator,
    schemas: Mapping[str, Schema],
    optimizer_config: Any = None,
) -> Operator:
    """Run the optimizer on ``op`` and certify its output; returns the
    optimized tree.  A convenience used by the test harness to sweep the
    rule catalogue over generated plans."""
    from ..relational.optimizer import optimize

    optimized = optimize(op, optimizer_config)
    check_rewrite(op, optimized, schemas)
    return optimized
