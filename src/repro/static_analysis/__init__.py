"""Static soundness layer: IR plan/rewrite verification.

Two entry points (DESIGN.md, "Static analysis"):

* :func:`verify_plan` — schema/attribute resolution and NULL-aware
  lattice typing over an operator tree; returns provable
  :class:`Violation`\\ s with operator-path diagnostics.  Wired into the
  engine behind ``MahifConfig(verify_plans=True)`` (default on under the
  test/fuzz harness via ``MAHIF_VERIFY_PLANS=1``).
* :func:`check_rewrite` / :func:`check_expr_rewrite` — NULL-soundness
  certification of optimizer rewrites: a lattice filter plus a
  deterministic witness differential that always probes the all-NULL
  state, statically rejecting the PR-2 class of bugs (``x = x -> TRUE``,
  ``x * 0 -> 0``, NOT-comparison flips).

The repo-invariant half of the layer lives in ``tools/repro_lint.py``.
"""

from .lattice import (
    ALL_KINDS,
    BOOL,
    FLOAT,
    INT,
    NULL_TYPE,
    NUMERIC_KINDS,
    STR,
    TOP,
    AbstractType,
    abstract_of_type_tag,
    abstract_of_value,
    is_condition_like,
    join,
)
from .rewrite_check import (
    RewriteUnsoundError,
    certify_optimizer_rules,
    check_expr_rewrite,
    check_rewrite,
)
from .verifier import (
    PlanVerificationError,
    Violation,
    infer_expr_type,
    verify_condition,
    verify_plan,
    verify_plan_or_raise,
    verify_reenactment_plans,
)

__all__ = [
    "AbstractType",
    "ALL_KINDS",
    "NUMERIC_KINDS",
    "TOP",
    "NULL_TYPE",
    "BOOL",
    "INT",
    "FLOAT",
    "STR",
    "join",
    "abstract_of_value",
    "abstract_of_type_tag",
    "is_condition_like",
    "Violation",
    "PlanVerificationError",
    "infer_expr_type",
    "verify_condition",
    "verify_plan",
    "verify_plan_or_raise",
    "verify_reenactment_plans",
    "RewriteUnsoundError",
    "check_expr_rewrite",
    "check_rewrite",
    "certify_optimizer_rules",
]
