"""Injectable filesystem operations — the store's fault-injection seam.

:class:`HistoryStore` routes every write-side filesystem operation
(open, write, flush, truncate, fsync, atomic rename, directory fsync)
through a
:class:`FileOps` instance.  Production uses :data:`REAL_OPS`, a direct
passthrough; tests substitute fault injectors to *prove* the recovery
contracts instead of trusting them:

* :class:`CrashingOps` — a process death at an exact byte offset of the
  durable write stream: the prefix reaches the disk, everything after
  (including the rename of a torn checkpoint temp file) is lost.  The
  kill-at-every-byte-offset fuzz in ``tests/test_store_faults.py`` runs
  a whole append scenario once per offset and asserts ``open()`` always
  recovers a consistent prefix of the log.
* :class:`FlakyOps` — transient ``OSError`` (ENOSPC, EIO, …) on the
  first N write-side calls, then healthy: exercises
  :meth:`HistoryStore.append`'s roll-back-and-retry contract.
* :class:`SlowOps` — per-operation latency, for deadline and overload
  tests that need I/O to take real time.

A simulated crash raises :class:`SimulatedCrash`, deliberately a
``BaseException`` subclass: a real crash is not catchable by the store's
``except OSError`` / ``except Exception`` recovery paths, so the
simulation must not be either.  Only the test harness catches it.
"""

from __future__ import annotations

import os
import pathlib
import threading
import time

__all__ = [
    "FileOps",
    "REAL_OPS",
    "SimulatedCrash",
    "CrashingOps",
    "CountingOps",
    "FlakyOps",
    "SlowOps",
]


class SimulatedCrash(BaseException):
    """The injected process death.  ``BaseException`` on purpose — see
    the module docstring."""


class FileOps:
    """Write-side filesystem operations, overridable per call site."""

    def open(self, path: pathlib.Path, mode: str):
        return open(path, mode)

    def write(self, fh, data: bytes) -> None:
        fh.write(data)

    def flush(self, fh) -> None:
        fh.flush()

    def truncate(self, fh, size: int) -> None:
        fh.truncate(size)

    def fsync(self, fh) -> None:
        os.fsync(fh.fileno())

    def replace(self, src: pathlib.Path, dst: pathlib.Path) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: pathlib.Path) -> None:
        """fsync a directory so a just-renamed entry survives power loss.

        Platforms that cannot open directories (Windows) silently skip —
        the rename is still atomic there, just not power-loss durable.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


REAL_OPS = FileOps()


class CountingOps(FileOps):
    """Passthrough that counts durable bytes and rename operations.

    ``byte_count`` advances on every :meth:`write` (log records and
    checkpoint temp files alike); ``replace_count`` on every atomic
    rename.  The fuzz harness runs a scenario once under this to learn
    the crash-point space, then replays it under :class:`CrashingOps`
    at every offset.  Counting starts at :meth:`arm` (so store creation
    can be excluded from the fuzzed region).
    """

    def __init__(self) -> None:
        self.byte_count = 0
        self.replace_count = 0
        self.fsync_count = 0
        self.dir_fsync_count = 0
        self._armed = False

    def arm(self) -> None:
        self._armed = True

    def write(self, fh, data: bytes) -> None:
        if self._armed:
            self.byte_count += len(data)
        super().write(fh, data)

    def replace(self, src, dst) -> None:
        if self._armed:
            self.replace_count += 1
        super().replace(src, dst)

    def fsync(self, fh) -> None:
        if self._armed:
            self.fsync_count += 1
        super().fsync(fh)

    def fsync_dir(self, path) -> None:
        if self._armed:
            self.dir_fsync_count += 1
        super().fsync_dir(path)


class CrashingOps(FileOps):
    """Die after exactly ``byte_budget`` durable bytes past :meth:`arm`.

    The write that crosses the budget persists only its allowed prefix
    (flushed, so it is really on disk) and then raises
    :class:`SimulatedCrash`; every later operation raises too — a dead
    process performs no further I/O.  ``crash_on_replace`` optionally
    dies *instead* on the Nth (1-based) atomic rename after arming,
    before the rename takes effect, which models a torn checkpoint:
    temp file fully written, target never updated.
    """

    def __init__(
        self,
        byte_budget: int | None = None,
        *,
        crash_on_replace: int | None = None,
    ) -> None:
        self._budget = byte_budget
        self._replace_at = crash_on_replace
        self._replaces = 0
        self._armed = byte_budget is None and crash_on_replace is None
        self.dead = False

    def arm(self) -> None:
        self._armed = True

    def _check_dead(self) -> None:
        if self.dead:
            raise SimulatedCrash("operation after simulated crash")

    def _die(self) -> None:
        self.dead = True
        raise SimulatedCrash("injected crash point reached")

    def open(self, path, mode):
        self._check_dead()
        return super().open(path, mode)

    def write(self, fh, data: bytes) -> None:
        self._check_dead()
        if not self._armed or self._budget is None:
            return super().write(fh, data)
        if len(data) > self._budget:
            prefix = data[: self._budget]
            if prefix:
                fh.write(prefix)
            fh.flush()  # the torn prefix really reached the disk
            self._budget = 0
            self._die()
        self._budget -= len(data)
        super().write(fh, data)

    def flush(self, fh) -> None:
        self._check_dead()
        super().flush(fh)

    def truncate(self, fh, size: int) -> None:
        self._check_dead()
        super().truncate(fh, size)

    def fsync(self, fh) -> None:
        self._check_dead()
        super().fsync(fh)

    def replace(self, src, dst) -> None:
        self._check_dead()
        if self._armed and self._replace_at is not None:
            self._replaces += 1
            if self._replaces >= self._replace_at:
                self._die()
        super().replace(src, dst)

    def fsync_dir(self, path) -> None:
        self._check_dead()
        super().fsync_dir(path)


class FlakyOps(FileOps):
    """Raise a transient ``OSError`` on the first ``failures`` write-side
    calls (write/flush/fsync/replace), then behave normally.

    Thread-safe: the failure budget is decremented under a lock so a
    concurrent service exercising a flaky store sees exactly
    ``failures`` errors in total.  ``armed=False`` defers injection
    until :meth:`arm` (e.g. to let store creation through unharmed).
    """

    def __init__(
        self, failures: int, errno_: int = 5, *, armed: bool = True
    ) -> None:  # EIO
        self._remaining = failures
        self._errno = errno_
        self._lock = threading.Lock()
        self._armed = armed
        self.raised = 0

    def arm(self) -> None:
        with self._lock:
            self._armed = True

    def _maybe_fail(self, op: str) -> None:
        with self._lock:
            if self._armed and self._remaining > 0:
                self._remaining -= 1
                self.raised += 1
                raise OSError(self._errno, f"injected transient {op} error")

    def write(self, fh, data: bytes) -> None:
        self._maybe_fail("write")
        super().write(fh, data)

    def flush(self, fh) -> None:
        self._maybe_fail("flush")
        super().flush(fh)

    def fsync(self, fh) -> None:
        self._maybe_fail("fsync")
        super().fsync(fh)

    def replace(self, src, dst) -> None:
        self._maybe_fail("replace")
        super().replace(src, dst)


class SlowOps(FileOps):
    """Sleep ``delay`` seconds before every write-side operation."""

    def __init__(self, delay: float) -> None:
        self._delay = delay

    def _stall(self) -> None:
        time.sleep(self._delay)

    def write(self, fh, data: bytes) -> None:
        self._stall()
        super().write(fh, data)

    def flush(self, fh) -> None:
        self._stall()
        super().flush(fh)

    def fsync(self, fh) -> None:
        self._stall()
        super().fsync(fh)

    def replace(self, src, dst) -> None:
        self._stall()
        super().replace(src, dst)
