"""Append-only on-disk history store with snapshot checkpoints.

This is the persistence half of the service subsystem (see DESIGN.md,
"Service architecture"): a transaction history survives process exits as

* ``META.json`` — format marker, schema version, checkpoint interval,
* ``log.jsonl`` — one JSON record per statement, append-only,
* ``checkpoints/ckpt-<version>.json`` — full database snapshots taken at
  version 0 (the pre-history state) and after every
  ``checkpoint_interval``-th statement.

Any version ``v`` is reconstructed by loading the nearest checkpoint at
or below ``v`` and replaying at most ``checkpoint_interval`` statements
— the same policy the in-memory :class:`~repro.relational.versioning.
VersionedDatabase` now uses, so time travel never needs a full-history
replay and never holds every intermediate state at once.

Crash safety: checkpoints are written to a temp file and atomically
renamed into place, so a checkpoint file is either whole or absent.  Log
appends are single ``write()`` calls terminated by a newline; a crash
mid-append leaves at most one partial trailing line, which
:meth:`HistoryStore.open` detects (truncated or unparseable tail) and
truncates away, then discards any checkpoint deeper than the recovered
log.  The store therefore reopens to the longest durable prefix of the
history.

Durability: with ``sync=True`` (the service default) the log file is
fsynced after every append and the store directory is fsynced after
every atomic checkpoint rename, so both the record and the rename
survive power loss, not just process death.  ``sync=False`` keeps the
crash-*consistency* guarantees (a torn tail is still truncated away)
but trades power-loss durability for speed — right for tests and
throwaway stores.

Every write-side filesystem operation goes through an injectable
:class:`~repro.store.faults.FileOps` seam (``ops=``), which is how the
fault-injection suite proves these contracts instead of asserting them:
see :mod:`repro.store.faults` and ``tests/test_store_faults.py``.

Transient write errors (``OSError`` from a full or flaky disk) during
:meth:`append` roll the log back to its pre-append length and surface a
*retryable* :class:`StoreError`; the store stays open and consistent, so
a client retry (the service pairs this with idempotency keys) can
succeed once the condition clears.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Iterator

from ..relational.database import Database
from ..relational.history import History
from ..relational.statements import Statement
from ..relational.versioning import (
    DEFAULT_CHECKPOINT_INTERVAL,
    nearest_checkpoint,
)
from .codec import (
    CodecError,
    decode_database,
    decode_statement,
    encode_database,
    encode_statement,
)
from .faults import REAL_OPS, FileOps

__all__ = ["HistoryStore", "StoreError", "DEFAULT_CHECKPOINT_INTERVAL"]

FORMAT = "mahif-history-store"
FORMAT_VERSION = 1

_META = "META.json"
_LOG = "log.jsonl"
_CHECKPOINT_DIR = "checkpoints"


class StoreError(Exception):
    """Raised for invalid store operations or unreadable store layouts.

    ``retryable`` is True when the operation failed transiently (e.g. a
    disk write error that was rolled back) and left the store consistent
    — the caller may retry the same call.
    """

    def __init__(self, message: str, *, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


def _checkpoint_name(version: int) -> str:
    return f"ckpt-{version:08d}.json"


class HistoryStore:
    """A persistent, append-only transaction history.

    Use :meth:`create` for a fresh store, :meth:`open` to recover an
    existing one; both return a store ready for :meth:`append`,
    :meth:`as_of`, and :meth:`history`.  Stores are context managers::

        with HistoryStore.create(path, initial_db) as store:
            store.append(stmt)
    """

    def __init__(
        self,
        path: pathlib.Path,
        *,
        checkpoint_interval: int,
        statements: list[Statement],
        current: Database,
        checkpoint_versions: list[int],
        sync: bool,
        ops: FileOps,
    ) -> None:
        self._path = path
        self._interval = checkpoint_interval
        self._statements = statements
        self._current = current
        self._checkpoint_versions = sorted(checkpoint_versions)
        self._sync = sync
        self._ops = ops
        self._log_fh = ops.open(path / _LOG, "ab")
        self._closed = False
        self._failed: str | None = None

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | pathlib.Path,
        initial: Database,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        sync: bool = False,
        ops: FileOps = REAL_OPS,
    ) -> "HistoryStore":
        """Initialize a new store at ``path`` (must not already hold one)."""
        if checkpoint_interval < 1:
            raise StoreError("checkpoint_interval must be >= 1")
        path = pathlib.Path(path)
        if (path / _META).exists():
            raise StoreError(f"store already exists at {path}")
        path.mkdir(parents=True, exist_ok=True)
        (path / _CHECKPOINT_DIR).mkdir(exist_ok=True)
        meta = {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "checkpoint_interval": checkpoint_interval,
        }
        _atomic_write(
            path / _META,
            (json.dumps(meta, indent=2) + "\n").encode("utf-8"),
            sync=sync,
            ops=ops,
        )
        (path / _LOG).touch()
        store = cls(
            path,
            checkpoint_interval=checkpoint_interval,
            statements=[],
            current=initial,
            checkpoint_versions=[],
            sync=sync,
            ops=ops,
        )
        store._write_checkpoint(0, initial)
        if sync:
            ops.fsync_dir(path)
        return store

    @classmethod
    def open(
        cls,
        path: str | pathlib.Path,
        *,
        sync: bool = False,
        ops: FileOps = REAL_OPS,
    ) -> "HistoryStore":
        """Open an existing store, recovering from a truncated log tail."""
        path = pathlib.Path(path)
        try:
            meta = json.loads((path / _META).read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreError(f"no history store at {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt store metadata at {path}: {exc}") from None
        if not isinstance(meta, dict) or meta.get("format") != FORMAT:
            raise StoreError(f"{path} is not a {FORMAT} directory")
        if meta.get("version") != FORMAT_VERSION:
            raise StoreError(
                f"unsupported store format version {meta.get('version')!r}"
            )
        try:
            interval = int(meta["checkpoint_interval"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(
                f"corrupt store metadata at {path}: {exc}"
            ) from None
        if interval < 1:
            raise StoreError(
                f"corrupt store metadata at {path}: checkpoint_interval "
                f"{interval}"
            )

        statements = cls._recover_log(path / _LOG, ops)
        named = cls._scan_checkpoints(path, len(statements))
        if 0 not in named:
            raise StoreError(f"store at {path} lost its base checkpoint")

        # Rebuild checkpoints a crash lost (log record durable, rename
        # not reached), so versions behind the hole never replay more
        # than one interval.  Checkpoints are loaded lazily — only when
        # a rebuild (or the final current-state replay) needs a base —
        # so a routine reopen costs one checkpoint load, not all of
        # them; content corruption is likewise handled lazily, by
        # :meth:`as_of`'s fallback-and-reheal.
        grid = range(interval, len(statements) + 1, interval)
        checkpoint_versions = sorted({0} | {v for v in grid if v in named})
        store = cls(
            path,
            checkpoint_interval=interval,
            statements=statements,
            current=None,  # type: ignore[arg-type]  # set below
            checkpoint_versions=checkpoint_versions,
            sync=sync,
            ops=ops,
        )
        try:
            at = None
            state = None
            for target in [v for v in grid if v not in named]:
                if at is None or store._nearest_checkpoint(target) > at:
                    at, state = store._load_base(target)
                for stmt in statements[at:target]:
                    state = stmt.apply(state)
                at = target
                store._write_checkpoint(target, state)
            if at is None or store._checkpoint_versions[-1] > at:
                at, state = store._load_base(len(statements))
            for stmt in statements[at:]:
                state = stmt.apply(state)
            store._current = state
        except BaseException:
            store.close()
            raise
        return store

    def close(self) -> None:
        if not self._closed:
            try:
                self._log_fh.flush()
                if self._sync:
                    self._ops.fsync(self._log_fh)
            except OSError:
                pass  # closing a store on a failed disk must not raise
            finally:
                self._log_fh.close()
                self._closed = True

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery helpers ----------------------------------------------------
    @staticmethod
    def _recover_log(
        log_path: pathlib.Path, ops: FileOps = REAL_OPS
    ) -> list[Statement]:
        """Parse the statement log, truncating a partial/corrupt tail.

        Every record must be one complete, newline-terminated JSON line;
        the first violation (a crash mid-append, a torn write) ends the
        log there, and the file is truncated back to the last good
        record so subsequent appends extend a clean prefix.
        """
        statements: list[Statement] = []
        good_end = 0
        try:
            with ops.open(log_path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            # e.g. a crash in create() between the META write and the
            # log touch: surface as StoreError so callers (the service's
            # startup skip logic) can treat it as one bad store, not an
            # internal failure.
            raise StoreError(
                f"store has no readable statement log: {exc}"
            ) from None
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                break  # partial trailing line: not durable
            line = raw[offset:newline]
            try:
                record = json.loads(line.decode("utf-8"))
                stmt = decode_statement(record["stmt"])
            except (json.JSONDecodeError, UnicodeDecodeError, CodecError,
                    KeyError, TypeError):
                break  # corrupt record: everything after it is suspect
            statements.append(stmt)
            good_end = newline + 1
            offset = newline + 1
        if good_end < len(raw):
            with ops.open(log_path, "r+b") as fh:
                ops.truncate(fh, good_end)
        return statements

    @staticmethod
    def _scan_checkpoints(path: pathlib.Path, length: int) -> set[int]:
        """Checkpoint versions present on disk, by name only: parseable
        file name, within the recovered log (a checkpoint deeper than
        the log is stale — it described statements the truncated tail
        lost).  Content validation happens in ``open``'s single
        ascending pass, which loads each checkpoint exactly once and
        rebuilds corrupt ones from the log."""
        versions: set[int] = set()
        for entry in sorted((path / _CHECKPOINT_DIR).glob("ckpt-*.json")):
            try:
                version = int(entry.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if version > length:
                entry.unlink(missing_ok=True)
                continue
            versions.add(version)
        return versions

    # -- appending -----------------------------------------------------------
    def append(
        self, stmt: Statement, *, state: Database | None = None
    ) -> Database:
        """Durably append one statement and return the new current state.

        The log record is written, flushed, and (with ``sync``) fsynced
        *before* the in-memory state advances, so a failure between the
        two leaves the store recoverable to a consistent prefix either
        way.  A transient ``OSError`` rolls the log back to its
        pre-append length and raises a retryable :class:`StoreError`;
        if the roll-back itself fails the store is marked failed and
        every later operation raises (reopen to recover).

        ``state`` optionally supplies the caller-certified result of
        ``stmt.apply(current)`` — callers that already validated the
        statement (the service pre-validates whole batches) skip the
        second apply.  Passing a wrong state corrupts the version chain;
        only pass what was computed from :attr:`current`.
        """
        self._check_open()
        # validate before logging (unless the caller already applied it)
        new_state = state if state is not None else stmt.apply(self._current)
        record = {"i": len(self._statements) + 1,
                  "stmt": encode_statement(stmt)}
        data = (json.dumps(record) + "\n").encode("utf-8")
        try:
            self._ops.write(self._log_fh, data)
            self._ops.flush(self._log_fh)
            if self._sync:
                self._ops.fsync(self._log_fh)
        except OSError as exc:
            self._rollback_log(exc)
            raise StoreError(
                f"append failed and was rolled back: {exc}", retryable=True
            ) from None
        self._statements.append(stmt)
        self._current = new_state
        version = len(self._statements)
        if version % self._interval == 0:
            try:
                self._write_checkpoint(version, new_state)
            except OSError:
                # The record is durable; the checkpoint is an
                # optimization that open()/as_of() rebuild on demand.
                pass
        return new_state

    def _rollback_log(self, cause: OSError) -> None:
        """Truncate the log back to its last durable record after a
        failed append write, reopening the handle to drop any buffered
        partial data.  Failure to roll back marks the store failed."""
        expected = None
        try:
            self._log_fh.close()
        except OSError:
            pass
        try:
            # Re-derive the durable end: everything up to the last
            # complete record of the first len(self._statements) lines.
            with self._ops.open(self._path / _LOG, "rb") as fh:
                raw = fh.read()
            end = 0
            for _ in range(len(self._statements)):
                newline = raw.find(b"\n", end)
                if newline == -1:
                    break
                end = newline + 1
            expected = end
            with self._ops.open(self._path / _LOG, "r+b") as fh:
                self._ops.truncate(fh, expected)
            self._log_fh = self._ops.open(self._path / _LOG, "ab")
        except OSError as exc:
            self._failed = (
                f"log roll-back after failed append also failed "
                f"(append: {cause}; roll-back: {exc}); reopen the store"
            )
            self._closed = True

    def append_history(self, history: History) -> Database:
        """Append every statement of ``history`` in order."""
        for stmt in history:
            self.append(stmt)
        return self._current

    def _write_checkpoint(self, version: int, db: Database) -> None:
        target = self._path / _CHECKPOINT_DIR / _checkpoint_name(version)
        _atomic_write(
            target,
            (json.dumps(encode_database(db)) + "\n").encode("utf-8"),
            sync=self._sync,
            ops=self._ops,
        )
        if version not in self._checkpoint_versions:
            self._checkpoint_versions.append(version)
            self._checkpoint_versions.sort()

    # -- access --------------------------------------------------------------
    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def checkpoint_interval(self) -> int:
        return self._interval

    @property
    def sync(self) -> bool:
        """Whether appends fsync the log and checkpoint renames fsync
        the directory (power-loss durability, not just crash safety)."""
        return self._sync

    @property
    def current(self) -> Database:
        """The latest state ``H(D)``."""
        return self._current

    @property
    def version_count(self) -> int:
        """Number of versions, ``len(history) + 1``."""
        return len(self._statements) + 1

    def __len__(self) -> int:
        return len(self._statements)

    def history(self) -> History:
        return History(tuple(self._statements))

    def checkpoint_versions(self) -> tuple[int, ...]:
        return tuple(self._checkpoint_versions)

    def replay_cost(self, version: int) -> int:
        """Statements :meth:`as_of` replays for ``version`` — by the
        checkpoint policy always ``< checkpoint_interval`` (and 0 when
        the version is the current state or a checkpoint)."""
        self._check_version(version)
        if version == len(self._statements):
            return 0
        return version - self._nearest_checkpoint(version)

    def as_of(self, version: int) -> Database:
        """Reconstruct the state after the first ``version`` statements.

        Loads the nearest checkpoint at or below ``version`` and replays
        the ≤ ``checkpoint_interval`` statements between the two.  A
        checkpoint whose content has rotted is discarded, the replay
        falls back to the next one below, and every checkpoint-grid
        version the longer replay crosses is re-written — one corrupt
        snapshot costs one longer read, never a failed one.
        """
        self._check_version(version)
        if version == len(self._statements):
            return self._current
        base, state = self._load_base(version)
        for index in range(base, version):
            state = self._statements[index].apply(state)
            reached = index + 1
            if (
                reached % self._interval == 0
                and reached not in self._checkpoint_versions
            ):
                self._write_checkpoint(reached, state)
        return state

    def _load_base(self, version: int) -> tuple[int, Database]:
        """The deepest loadable checkpoint at or below ``version``.

        Corrupt checkpoints are deleted and dropped from the index, and
        the search falls back to the next one below.  Only version 0 is
        irreplaceable: nothing earlier exists to rebuild it from.
        """
        while True:
            base = self._nearest_checkpoint(version)
            try:
                return base, _load_checkpoint(self._path, base)
            except StoreError as exc:
                if base == 0:
                    raise StoreError(
                        f"store at {self._path} lost its base "
                        f"checkpoint: {exc}"
                    ) from None
                self._checkpoint_versions.remove(base)
                (
                    self._path / _CHECKPOINT_DIR / _checkpoint_name(base)
                ).unlink(missing_ok=True)

    def initial(self) -> Database:
        return self.as_of(0)

    def versions(self) -> Iterator[tuple[int, Database]]:
        """Lazily iterate ``(version, state)`` pairs oldest-first, one
        statement apply per step (no checkpoint reloads)."""
        state = _load_checkpoint(self._path, 0)
        yield 0, state
        for index, stmt in enumerate(self._statements, start=1):
            state = stmt.apply(state)
            yield index, state

    # -- internals -----------------------------------------------------------
    def _nearest_checkpoint(self, version: int) -> int:
        return nearest_checkpoint(self._checkpoint_versions, version)

    def _check_version(self, version: int) -> None:
        if not 0 <= version <= len(self._statements):
            raise StoreError(
                f"version {version} out of range 0..{len(self._statements)}"
            )

    def _check_open(self) -> None:
        if self._failed is not None:
            raise StoreError(f"store failed: {self._failed}")
        if self._closed:
            raise StoreError("store is closed")


def _load_checkpoint(path: pathlib.Path, version: int) -> Database:
    target = path / _CHECKPOINT_DIR / _checkpoint_name(version)
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise StoreError(f"missing checkpoint {version}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt checkpoint {version}: {exc}") from None
    try:
        db = decode_database(payload)
    except CodecError as exc:
        # Valid JSON, invalid payload: still a corrupt checkpoint, and
        # it must enter the same StoreError fallback-and-reheal path.
        raise StoreError(f"corrupt checkpoint {version}: {exc}") from None
    if not isinstance(db, Database):
        raise StoreError(
            f"checkpoint {version} is not a set-semantics snapshot"
        )
    return db


def _atomic_write(
    target: pathlib.Path,
    data: bytes,
    *,
    sync: bool = False,
    ops: FileOps = REAL_OPS,
) -> None:
    """Write via temp file + rename so the target is whole or absent.

    With ``sync``, the temp file is fsynced before the rename (so the
    renamed-in content is durable, not just the directory entry) and the
    parent directory is fsynced after (so the rename itself survives
    power loss).
    """
    tmp = target.with_suffix(target.suffix + ".tmp")
    fh = ops.open(tmp, "wb")
    try:
        ops.write(fh, data)
        ops.flush(fh)
        if sync:
            ops.fsync(fh)
    finally:
        fh.close()
    ops.replace(tmp, target)
    if sync:
        ops.fsync_dir(target.parent)
