"""JSON codec for the persistent history store.

Everything the store writes — statements in the log, database snapshots
in checkpoint files — goes through this module.  The encoding is plain
JSON (one object per statement / snapshot) chosen for exact round
tripping rather than readability-first SQL:

* Python scalars survive unchanged: ``json`` distinguishes ``true`` from
  ``1`` and ``1`` from ``1.0``, and (with the stdlib's default
  ``allow_nan``) emits ``Infinity``/``NaN`` literals that it parses
  back, so ``Const(True)`` never comes back as ``Const(1)`` the way a
  SQL-text round trip would collapse it,
* expression / operator / statement trees are tagged by node kind and
  rebuilt structurally, so ``decode(encode(x)) == x`` holds as dataclass
  equality for every statement the engine can produce,
* both set (:class:`~repro.relational.relation.Relation`) and bag
  (:class:`~repro.relational.bag.BagRelation`) snapshots are supported;
  a snapshot records which semantics it carries.

The store's framing (JSONL log, checkpoint files, recovery) lives in
:mod:`repro.store.history_store`; this module is pure value <-> JSON.
"""

from __future__ import annotations

from typing import Any

from ..relational.algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from ..relational.bag import BagDatabase, BagRelation
from ..relational.database import Database
from ..relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    Var,
)
from ..relational.relation import Relation
from ..relational.schema import Schema, SchemaError
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)

__all__ = [
    "CodecError",
    "encode_expr",
    "decode_expr",
    "encode_operator",
    "decode_operator",
    "encode_statement",
    "decode_statement",
    "encode_database",
    "decode_database",
]


class CodecError(ValueError):
    """Raised when a JSON payload does not decode to a known node."""


# -- expressions -------------------------------------------------------------

def encode_expr(expr: Expr) -> dict:
    if isinstance(expr, Const):
        return {"e": "const", "v": expr.value}
    if isinstance(expr, Attr):
        return {"e": "attr", "n": expr.name}
    if isinstance(expr, Var):
        return {"e": "var", "n": expr.name}
    if isinstance(expr, Arith):
        return {
            "e": "arith", "op": expr.op,
            "l": encode_expr(expr.left), "r": encode_expr(expr.right),
        }
    if isinstance(expr, Cmp):
        return {
            "e": "cmp", "op": expr.op,
            "l": encode_expr(expr.left), "r": encode_expr(expr.right),
        }
    if isinstance(expr, Logic):
        return {
            "e": "logic", "op": expr.op,
            "l": encode_expr(expr.left), "r": encode_expr(expr.right),
        }
    if isinstance(expr, Not):
        return {"e": "not", "x": encode_expr(expr.operand)}
    if isinstance(expr, IsNull):
        return {"e": "isnull", "x": encode_expr(expr.operand)}
    if isinstance(expr, If):
        return {
            "e": "if",
            "c": encode_expr(expr.cond),
            "t": encode_expr(expr.then),
            "f": encode_expr(expr.orelse),
        }
    raise CodecError(f"cannot encode expression node {type(expr).__name__}")


def decode_expr(data: dict) -> Expr:
    try:
        kind = data["e"]
    except (TypeError, KeyError):
        raise CodecError(f"not an expression payload: {data!r}") from None
    try:
        return _decode_expr_kind(kind, data)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(
            f"malformed {kind!r} expression payload: {exc}"
        ) from None


def _decode_expr_kind(kind: str, data: dict) -> Expr:
    if kind == "const":
        return Const(data["v"])
    if kind == "attr":
        return Attr(data["n"])
    if kind == "var":
        return Var(data["n"])
    if kind == "arith":
        return Arith(data["op"], decode_expr(data["l"]), decode_expr(data["r"]))
    if kind == "cmp":
        return Cmp(data["op"], decode_expr(data["l"]), decode_expr(data["r"]))
    if kind == "logic":
        return Logic(data["op"], decode_expr(data["l"]), decode_expr(data["r"]))
    if kind == "not":
        return Not(decode_expr(data["x"]))
    if kind == "isnull":
        return IsNull(decode_expr(data["x"]))
    if kind == "if":
        return If(
            decode_expr(data["c"]), decode_expr(data["t"]),
            decode_expr(data["f"]),
        )
    raise CodecError(f"unknown expression kind {kind!r}")


# -- operators ---------------------------------------------------------------

def encode_operator(op: Operator) -> dict:
    if isinstance(op, RelScan):
        return {"q": "scan", "name": op.name}
    if isinstance(op, Singleton):
        return {
            "q": "singleton",
            "schema": list(op.schema.attributes),
            "row": list(op.row),
        }
    if isinstance(op, Project):
        return {
            "q": "project",
            "input": encode_operator(op.input),
            "outputs": [
                [encode_expr(expr), name] for expr, name in op.outputs
            ],
        }
    if isinstance(op, Select):
        return {
            "q": "select",
            "input": encode_operator(op.input),
            "cond": encode_expr(op.condition),
        }
    if isinstance(op, Union):
        return {
            "q": "union",
            "l": encode_operator(op.left), "r": encode_operator(op.right),
        }
    if isinstance(op, Difference):
        return {
            "q": "difference",
            "l": encode_operator(op.left), "r": encode_operator(op.right),
        }
    if isinstance(op, Join):
        return {
            "q": "join",
            "l": encode_operator(op.left), "r": encode_operator(op.right),
            "cond": encode_expr(op.condition),
        }
    raise CodecError(f"cannot encode operator node {type(op).__name__}")


def decode_operator(data: dict) -> Operator:
    try:
        kind = data["q"]
    except (TypeError, KeyError):
        raise CodecError(f"not an operator payload: {data!r}") from None
    try:
        return _decode_operator_kind(kind, data)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError, SchemaError) as exc:
        raise CodecError(
            f"malformed {kind!r} operator payload: {exc}"
        ) from None


def _decode_operator_kind(kind: str, data: dict) -> Operator:
    if kind == "scan":
        return RelScan(data["name"])
    if kind == "singleton":
        return Singleton(Schema(tuple(data["schema"])), tuple(data["row"]))
    if kind == "project":
        return Project(
            decode_operator(data["input"]),
            tuple(
                (decode_expr(expr), name) for expr, name in data["outputs"]
            ),
        )
    if kind == "select":
        return Select(decode_operator(data["input"]), decode_expr(data["cond"]))
    if kind == "union":
        return Union(decode_operator(data["l"]), decode_operator(data["r"]))
    if kind == "difference":
        return Difference(
            decode_operator(data["l"]), decode_operator(data["r"])
        )
    if kind == "join":
        return Join(
            decode_operator(data["l"]), decode_operator(data["r"]),
            decode_expr(data["cond"]),
        )
    raise CodecError(f"unknown operator kind {kind!r}")


# -- statements --------------------------------------------------------------

def encode_statement(stmt: Statement) -> dict:
    if isinstance(stmt, UpdateStatement):
        return {
            "s": "update",
            "relation": stmt.relation,
            "set": [
                [attr, encode_expr(expr)]
                for attr, expr in stmt.set_clauses.items()
            ],
            "where": encode_expr(stmt.condition),
        }
    if isinstance(stmt, DeleteStatement):
        return {
            "s": "delete",
            "relation": stmt.relation,
            "where": encode_expr(stmt.condition),
        }
    if isinstance(stmt, InsertTuple):
        return {
            "s": "insert",
            "relation": stmt.relation,
            "values": list(stmt.values),
        }
    if isinstance(stmt, InsertQuery):
        return {
            "s": "insert_query",
            "relation": stmt.relation,
            "query": encode_operator(stmt.query),
        }
    raise CodecError(f"cannot encode statement {type(stmt).__name__}")


def decode_statement(data: dict) -> Statement:
    try:
        kind = data["s"]
    except (TypeError, KeyError):
        raise CodecError(f"not a statement payload: {data!r}") from None
    try:
        return _decode_statement_kind(kind, data)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError, SchemaError) as exc:
        # Missing keys, wrong container shapes, bad clause values: all
        # malformed *payloads*, surfaced uniformly so callers (the HTTP
        # 400 arm, log recovery) need only one exception type.
        raise CodecError(
            f"malformed {kind!r} statement payload: {exc}"
        ) from None


def _decode_statement_kind(kind: str, data: dict) -> Statement:
    if kind == "update":
        return UpdateStatement(
            data["relation"],
            {attr: decode_expr(expr) for attr, expr in data["set"]},
            decode_expr(data["where"]),
        )
    if kind == "delete":
        return DeleteStatement(data["relation"], decode_expr(data["where"]))
    if kind == "insert":
        return InsertTuple(data["relation"], tuple(data["values"]))
    if kind == "insert_query":
        return InsertQuery(data["relation"], decode_operator(data["query"]))
    raise CodecError(f"unknown statement kind {kind!r}")


# -- snapshots ---------------------------------------------------------------

def _encode_relation(relation: Relation) -> dict:
    return {
        "attributes": list(relation.schema.attributes),
        "rows": [list(row) for row in relation.sorted_rows()],
    }


def _encode_bag_relation(relation: BagRelation) -> dict:
    return {
        "attributes": list(relation.schema.attributes),
        "rows": sorted(
            ([list(row), count]
             for row, count in relation.multiplicities.items()),
            key=repr,
        ),
    }


def encode_database(db: Database | BagDatabase) -> dict:
    """Encode a set or bag database snapshot (kind is recorded)."""
    if isinstance(db, BagDatabase):
        return {
            "kind": "bag",
            "relations": {
                name: _encode_bag_relation(db[name])
                for name in db.relation_names()
            },
        }
    return {
        "kind": "set",
        "relations": {
            name: _encode_relation(db[name]) for name in db.relation_names()
        },
    }


def decode_database(data: dict) -> Database | BagDatabase:
    try:
        kind = data["kind"]
        relations = data["relations"]
    except (TypeError, KeyError):
        raise CodecError(f"not a database payload: {data!r}") from None
    try:
        return _decode_database_kind(kind, relations)
    except CodecError:
        raise
    except (KeyError, TypeError, ValueError, SchemaError, AttributeError) as exc:
        raise CodecError(f"malformed database payload: {exc}") from None


def _decode_database_kind(kind: str, relations: dict) -> Database | BagDatabase:
    if kind == "set":
        return Database(
            {
                name: Relation.from_rows(
                    Schema(tuple(payload["attributes"])),
                    [tuple(row) for row in payload["rows"]],
                )
                for name, payload in relations.items()
            }
        )
    if kind == "bag":
        return BagDatabase(
            {
                name: BagRelation(
                    Schema(tuple(payload["attributes"])),
                    {tuple(row): count for row, count in payload["rows"]},
                )
                for name, payload in relations.items()
            }
        )
    raise CodecError(f"unknown database kind {kind!r}")
