"""Persistent history storage: append-only statement log + checkpoints.

The on-disk half of the service subsystem.  :class:`HistoryStore` keeps
a transaction history durable across process exits and reconstructs any
database version from the nearest snapshot checkpoint plus a bounded
replay; :mod:`repro.store.codec` is the exact-round-trip JSON encoding
it (and the wire protocol) uses for statements and snapshots.
"""

from .codec import (
    CodecError,
    decode_database,
    decode_expr,
    decode_operator,
    decode_statement,
    encode_database,
    encode_expr,
    encode_operator,
    encode_statement,
)
from .faults import (
    REAL_OPS,
    CountingOps,
    CrashingOps,
    FileOps,
    FlakyOps,
    SimulatedCrash,
    SlowOps,
)
from .history_store import (
    DEFAULT_CHECKPOINT_INTERVAL,
    HistoryStore,
    StoreError,
)

__all__ = [
    "CodecError",
    "CountingOps",
    "CrashingOps",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "FileOps",
    "FlakyOps",
    "HistoryStore",
    "REAL_OPS",
    "SimulatedCrash",
    "SlowOps",
    "StoreError",
    "decode_database",
    "decode_expr",
    "decode_operator",
    "decode_statement",
    "encode_database",
    "encode_expr",
    "encode_operator",
    "encode_statement",
]
