"""Workload substrate: synthetic datasets and parameterized histories.

Stands in for the paper's Chicago-taxi / TPC-C / YCSB data and the
Benchbase-generated transactional workloads (Section 13.1–13.2).
"""

from .datasets import (
    DATASETS,
    TAXI_SCHEMA,
    TPCC_STOCK_SCHEMA,
    YCSB_SCHEMA,
    dataset_by_name,
    taxi_trips,
    tpcc_stock,
    ycsb_usertable,
)
from .generator import Workload, WorkloadSpec, build_workload

__all__ = [
    "taxi_trips", "tpcc_stock", "ycsb_usertable", "dataset_by_name",
    "DATASETS", "TAXI_SCHEMA", "TPCC_STOCK_SCHEMA", "YCSB_SCHEMA",
    "WorkloadSpec", "Workload", "build_workload",
]
