"""Synthetic datasets standing in for the paper's evaluation data.

The paper uses 5M/50M-row samples of the Chicago taxi trips open dataset,
a TPC-C ``stock`` relation (Benchbase, SF 100) and a YCSB ``usertable``
(SF 5000).  None are available offline; these generators produce tables
with the same attributes (the subset the workloads touch), realistic
correlated value distributions, and — crucially for the experiments —
*numeric fee/quantity columns with controllable selectivity structure*,
because the paper's histories are range-predicate updates over those
columns.

All values are integers or 2-decimal floats so the MILP encoding's
strictness margin is always valid, and every table has an immutable
integer key (see the key-preservation note in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..relational.relation import Relation
from ..relational.schema import Schema

__all__ = [
    "TAXI_SCHEMA",
    "TPCC_STOCK_SCHEMA",
    "YCSB_SCHEMA",
    "taxi_trips",
    "tpcc_stock",
    "ycsb_usertable",
    "dataset_by_name",
    "DATASETS",
]

TAXI_COMPANIES = (
    "Flash Cab",
    "Taxi Affiliation Services",
    "Yellow Cab",
    "Blue Diamond",
    "City Service",
    "Sun Taxi",
    "Medallion Leasing",
    "Chicago Carriage",
)

TAXI_SCHEMA = Schema.of(
    "trip_id",
    "company",
    "pickup_area",
    "trip_seconds",
    "trip_miles",
    "fare",
    "tips",
    "tolls",
    "extras",
    "trip_total",
    types=(
        "int", "str", "int", "int", "float",
        "float", "float", "float", "float", "float",
    ),
)

TPCC_STOCK_SCHEMA = Schema.of(
    "s_i_id",
    "s_w_id",
    "s_quantity",
    "s_ytd",
    "s_order_cnt",
    "s_remote_cnt",
    types=("int", "int", "int", "int", "int", "int"),
)

YCSB_SCHEMA = Schema.of(
    "ycsb_key",
    "field0",
    "field1",
    "field2",
    "field3",
    "field4",
    types=("int", "int", "int", "int", "int", "int"),
)


def _round2(values: np.ndarray) -> np.ndarray:
    return np.round(values, 2)


def taxi_trips(n: int, seed: int = 7) -> Relation:
    """A synthetic Chicago-taxi-trips table with ``n`` rows.

    Distributions mirror the real dataset's shape: trip duration and
    distance are log-normal-ish and correlated; the fare is metered from
    them; tips concentrate around 0/15/20%; tolls and extras are sparse;
    ``trip_total`` is the exact sum of the fee components — the workloads'
    updates recompute exactly these relationships.
    """
    rng = np.random.default_rng(seed)
    trip_id = np.arange(1, n + 1)
    company = rng.choice(len(TAXI_COMPANIES), size=n)
    pickup_area = rng.integers(1, 78, size=n)
    trip_miles = _round2(np.exp(rng.normal(0.8, 0.9, size=n)).clip(0.1, 60.0))
    speed_mph = rng.normal(18.0, 5.0, size=n).clip(4.0, 45.0)
    trip_seconds = (trip_miles / speed_mph * 3600).astype(int).clip(60, 3 * 3600)
    fare = _round2(3.25 + 2.25 * trip_miles + 0.1 * (trip_seconds / 36.0))
    tip_rate = rng.choice([0.0, 0.10, 0.15, 0.20], size=n, p=[0.45, 0.2, 0.2, 0.15])
    tips = _round2(fare * tip_rate)
    tolls = _round2(
        np.where(rng.random(n) < 0.03, rng.uniform(1.0, 6.0, size=n), 0.0)
    )
    extras = _round2(
        np.where(rng.random(n) < 0.25, rng.choice([0.5, 1.0, 2.0, 4.0], size=n), 0.0)
    )
    trip_total = _round2(fare + tips + tolls + extras)

    rows = zip(
        trip_id.tolist(),
        (TAXI_COMPANIES[i] for i in company.tolist()),
        pickup_area.tolist(),
        trip_seconds.tolist(),
        trip_miles.tolist(),
        fare.tolist(),
        tips.tolist(),
        tolls.tolist(),
        extras.tolist(),
        trip_total.tolist(),
    )
    return Relation.from_rows(TAXI_SCHEMA, rows)


def tpcc_stock(n: int, seed: int = 11) -> Relation:
    """A TPC-C ``stock``-like relation with ``n`` rows.

    ``s_quantity`` is uniform 10..100 as in the spec; ``s_ytd`` and the
    order counters follow the usual post-run skew.  The paper's workloads
    issue range updates over quantity and ytd.
    """
    rng = np.random.default_rng(seed)
    items_per_warehouse = 100_000
    s_i_id = np.arange(1, n + 1) % items_per_warehouse + 1
    s_w_id = np.arange(n) // items_per_warehouse + 1
    s_quantity = rng.integers(10, 101, size=n)
    s_ytd = rng.integers(0, 1000, size=n)
    s_order_cnt = rng.integers(0, 100, size=n)
    s_remote_cnt = np.minimum(
        s_order_cnt, rng.integers(0, 20, size=n)
    )
    # make the composite key unique even past one warehouse of rows
    key = np.arange(1, n + 1)
    rows = zip(
        key.tolist(),
        s_w_id.tolist(),
        s_quantity.tolist(),
        s_ytd.tolist(),
        s_order_cnt.tolist(),
        s_remote_cnt.tolist(),
    )
    return Relation.from_rows(TPCC_STOCK_SCHEMA, rows)


def ycsb_usertable(n: int, seed: int = 13) -> Relation:
    """A YCSB ``usertable``-like relation with ``n`` rows.

    Real YCSB fields are opaque strings; the paper's workloads update them
    with key-range predicates, so numeric fields exercise the identical
    code paths.  Keys are dense and ordered — the physical key correlation
    the paper notes helps data slicing on YCSB.
    """
    rng = np.random.default_rng(seed)
    key = np.arange(1, n + 1)
    fields = rng.integers(0, 10_000, size=(n, 5))
    rows = zip(
        key.tolist(),
        *(fields[:, i].tolist() for i in range(5)),
    )
    return Relation.from_rows(YCSB_SCHEMA, rows)


#: name -> (generator, key attribute, predicate attribute, value attribute)
DATASETS = {
    "taxi": (taxi_trips, "trip_id", "fare", "trip_total"),
    "tpcc": (tpcc_stock, "s_i_id", "s_quantity", "s_ytd"),
    "ycsb": (ycsb_usertable, "ycsb_key", "ycsb_key", "field0"),
}


def dataset_by_name(name: str, n: int, seed: int = 7) -> Relation:
    """Generate a dataset by short name (``taxi``/``tpcc``/``ycsb``)."""
    try:
        generator = DATASETS[name][0]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; options: {sorted(DATASETS)}"
        ) from None
    return generator(n, seed=seed)
