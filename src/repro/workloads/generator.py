"""Parameterized transactional workloads (Section 13.2).

Histories are generated over one relation with the paper's knobs:

* ``U`` — number of statements in the history,
* ``D`` — percentage of updates *dependent* on the modified statement(s)
  (their predicate windows overlap the modification's window),
* ``T`` — percentage of tuples affected by each dependent update
  (``T0`` means under 1%),
* ``I`` / ``X`` — percentage of statements that are inserts / deletes,
* ``M`` — number of modifications in the HWQ.

The construction follows the paper's setup: statements are range-predicate
updates over a *predicate attribute* ``P`` that no statement modifies,
adding constants to a *value attribute* ``V``.  The modified statement is
the first statement; its hypothetical replacement shifts the predicate
window so some tuples are affected by exactly one version.  Dependent
updates overlap that window; independent updates live in a disjoint region
of ``P``'s value space (which is what makes their independence *provable*
by the MILP check).  For large ``T`` the disjoint region may be narrower
than ``T``; independent windows are then capped to what remains, which
preserves each figure's intent (``T`` controls the data volume the HWQ
touches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.hwq import HistoricalWhatIfQuery, Modification, Replace
from ..relational.database import Database
from ..relational.expressions import Attr, and_, ge, le
from ..relational.history import History
from ..relational.relation import Relation
from ..relational.statements import (
    DeleteStatement,
    InsertTuple,
    Statement,
    UpdateStatement,
)
from .datasets import DATASETS, dataset_by_name

__all__ = ["WorkloadSpec", "Workload", "build_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """All the knobs of Section 13.2 plus dataset selection."""

    dataset: str = "taxi"
    rows: int = 20_000
    updates: int = 100
    dependent_pct: float = 10.0
    affected_pct: float = 10.0
    insert_pct: float = 0.0
    delete_pct: float = 0.0
    modifications: int = 1
    seed: int = 42
    relation_name: str = "data"

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.updates < 1:
            raise ValueError("need at least one statement")
        if not 0 <= self.insert_pct + self.delete_pct <= 60:
            raise ValueError("insert_pct + delete_pct must be within 0..60")
        if self.modifications < 1:
            raise ValueError("need at least one modification")


@dataclass(frozen=True)
class Workload:
    """A generated benchmark instance."""

    spec: WorkloadSpec
    database: Database
    history: History
    modifications: tuple[Modification, ...]
    predicate_attribute: str
    value_attribute: str

    @property
    def query(self) -> HistoricalWhatIfQuery:
        return HistoricalWhatIfQuery(
            self.history, self.database, self.modifications
        )


def _window_condition(attribute: str, low: float, high: float):
    return and_(ge(Attr(attribute), low), le(Attr(attribute), high))


def _quantile_window(
    sorted_values: np.ndarray, start_fraction: float, width_fraction: float
) -> tuple[float, float]:
    """Translate a quantile-space window into attribute-value bounds."""
    n = len(sorted_values)
    start_fraction = min(max(start_fraction, 0.0), 1.0)
    end_fraction = min(start_fraction + max(width_fraction, 0.0), 1.0)
    low_index = min(int(start_fraction * (n - 1)), n - 1)
    high_index = min(int(end_fraction * (n - 1)), n - 1)
    return float(sorted_values[low_index]), float(sorted_values[high_index])


def build_workload(spec: WorkloadSpec) -> Workload:
    """Generate the database, history and modifications for a spec."""
    rng = np.random.default_rng(spec.seed)
    relation = dataset_by_name(spec.dataset, spec.rows, seed=spec.seed)
    _, key_attr, predicate_attr, value_attr = DATASETS[spec.dataset]

    predicate_index = relation.schema.index_of(predicate_attr)
    sorted_values = np.sort(
        np.array([t[predicate_index] for t in relation], dtype=float)
    )

    t_frac = max(spec.affected_pct, 0.2) / 100.0
    # Quantile-space layout: modification window first, independent region
    # after a small gap.
    mod_start = 0.02
    mod_window = _quantile_window(sorted_values, mod_start, t_frac)
    # The hypothetical change shifts the window by a small fixed offset:
    # T controls how much data the HWQ touches, not how different the
    # hypothetical statement is (Figure 20's R+PS stays flat in T only
    # because the modification's reach does not blow up with T).
    shift = min(t_frac / 2.0, 0.04)
    shifted_window = _quantile_window(
        sorted_values, mod_start + shift, t_frac
    )
    dependent_region = (mod_start, mod_start + t_frac + shift)
    independent_start = min(dependent_region[1] + 0.05, 0.95)
    independent_space = max(1.0 - independent_start - 0.01, 0.02)
    independent_width = min(t_frac, independent_space / 2.0)

    n_statements = spec.updates
    n_inserts = int(round(n_statements * spec.insert_pct / 100.0))
    n_deletes = int(round(n_statements * spec.delete_pct / 100.0))
    n_updates = n_statements - n_inserts - n_deletes
    n_dependent = max(
        1, int(round(n_updates * spec.dependent_pct / 100.0))
    )
    n_dependent = min(n_dependent, n_updates)

    statements: list[Statement] = []
    dependent_positions: list[int] = []

    # Position 1: the statement the HWQ modifies.
    statements.append(
        UpdateStatement(
            spec.relation_name,
            {value_attr: Attr(value_attr) + 2},
            _window_condition(predicate_attr, *mod_window),
        )
    )
    dependent_positions.append(1)

    remaining_updates = n_updates - 1
    remaining_dependent = n_dependent - 1

    kinds: list[str] = []
    kinds.extend(["dep"] * remaining_dependent)
    kinds.extend(["indep"] * (remaining_updates - remaining_dependent))
    kinds.extend(["insert"] * n_inserts)
    kinds.extend(["delete"] * n_deletes)
    rng.shuffle(kinds)

    next_insert_key = spec.rows + 1
    schema = relation.schema
    for kind in kinds:
        if kind == "dep":
            start = rng.uniform(
                dependent_region[0], max(dependent_region[0], dependent_region[1] - t_frac)
            )
            window = _quantile_window(sorted_values, start, t_frac)
            delta = int(rng.choice([-2, -1, 1, 2, 3]))
            statements.append(
                UpdateStatement(
                    spec.relation_name,
                    {value_attr: Attr(value_attr) + delta},
                    _window_condition(predicate_attr, *window),
                )
            )
            dependent_positions.append(len(statements))
        elif kind == "indep":
            start = rng.uniform(
                independent_start, 1.0 - independent_width - 0.005
            )
            window = _quantile_window(
                sorted_values, start, independent_width
            )
            delta = int(rng.choice([-2, -1, 1, 2, 3]))
            statements.append(
                UpdateStatement(
                    spec.relation_name,
                    {value_attr: Attr(value_attr) + delta},
                    _window_condition(predicate_attr, *window),
                )
            )
        elif kind == "insert":
            row = _synthesize_row(schema, relation, next_insert_key, rng)
            next_insert_key += 1
            statements.append(InsertTuple(spec.relation_name, row))
        else:  # delete: a narrow independent window, so the table survives
            start = rng.uniform(
                independent_start, 1.0 - independent_width - 0.005
            )
            window = _quantile_window(
                sorted_values, start, min(0.002, independent_width)
            )
            statements.append(
                DeleteStatement(
                    spec.relation_name,
                    _window_condition(predicate_attr, *window),
                )
            )

    history = History(tuple(statements))

    # Modifications: the first replaces statement 1 with the shifted
    # window; additional ones shift other dependent updates.
    modifications: list[Modification] = [
        Replace(
            1,
            UpdateStatement(
                spec.relation_name,
                {value_attr: Attr(value_attr) + 2},
                _window_condition(predicate_attr, *shifted_window),
            ),
        )
    ]
    extra_targets = [p for p in dependent_positions[1:]]
    rng.shuffle(extra_targets)
    for position in extra_targets[: spec.modifications - 1]:
        original = history[position]
        assert isinstance(original, UpdateStatement)
        start = rng.uniform(
            dependent_region[0],
            max(dependent_region[0], dependent_region[1] - t_frac),
        )
        window = _quantile_window(sorted_values, start, t_frac)
        modifications.append(
            Replace(
                position,
                UpdateStatement(
                    spec.relation_name,
                    dict(original.set_clauses),
                    _window_condition(predicate_attr, *window),
                ),
            )
        )

    database = Database({spec.relation_name: relation})
    return Workload(
        spec=spec,
        database=database,
        history=history,
        modifications=tuple(modifications),
        predicate_attribute=predicate_attr,
        value_attribute=value_attr,
    )


def _synthesize_row(
    schema, relation: Relation, key: int, rng: np.random.Generator
) -> tuple[Any, ...]:
    """A fresh row for inserts: copy a random existing row, replace the
    key (first attribute) with a fresh one."""
    template = next(iter(relation.tuples))
    row = list(template)
    row[0] = key
    jitter_index = min(2, len(row) - 1)
    value = row[jitter_index]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        row[jitter_index] = value
    return tuple(row)
