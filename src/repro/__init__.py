"""repro — a reproduction of "Efficient Answering of Historical What-if
Queries" (Campbell, Arab, Glavic; SIGMOD 2022).

The package implements **Mahif**, a middleware answering *historical
what-if queries*: "how would the database look today had this past update
been different?"  The answer is computed by *reenacting* the original and
the hypothetically-modified transactional history as queries and taking
the symmetric difference, optimized by *data slicing* (filter provably
unaffected tuples) and *program slicing* (drop provably irrelevant
statements, proved via symbolic execution over VC-tables and an MILP
solver).

Quickstart::

    from repro import (
        Database, Relation, Schema, History, parse_history,
        HistoricalWhatIfQuery, Replace, Mahif, Method,
    )

    db = Database({"Orders": Relation.from_rows(
        Schema.of("ID", "Customer", "Country", "Price", "ShippingFee"),
        [(11, "Susan", "UK", 20, 5), (12, "Alex", "UK", 50, 5)])})
    history = History(tuple(parse_history(
        "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;")))
    new_u1 = parse_history(
        "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60;")[0]
    query = HistoricalWhatIfQuery(history, db, (Replace(1, new_u1),))
    print(Mahif().answer(query, Method.R_PS_DS).delta.pretty())

See DESIGN.md for the paper-to-module inventory and EXPERIMENTS.md for
the reproduced evaluation.
"""

from .core import (
    AlignedHistories,
    DatabaseDelta,
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    InsertStatementMod,
    Mahif,
    MahifConfig,
    MahifResult,
    Method,
    Modification,
    RelationDelta,
    Replace,
    align,
    answer,
    naive_what_if,
)
from .relational import (
    Database,
    DeleteStatement,
    History,
    InsertQuery,
    InsertTuple,
    Relation,
    Schema,
    Statement,
    UpdateStatement,
    VersionedDatabase,
    parse_expression,
    parse_history,
    parse_statement,
)
from .store import HistoryStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "Schema", "Relation", "Database", "VersionedDatabase", "History",
    "Statement", "UpdateStatement", "DeleteStatement", "InsertTuple",
    "InsertQuery", "parse_expression", "parse_statement", "parse_history",
    # core
    "HistoricalWhatIfQuery", "Modification", "Replace",
    "InsertStatementMod", "DeleteStatementMod", "AlignedHistories",
    "align", "DatabaseDelta", "RelationDelta",
    "Mahif", "MahifConfig", "MahifResult", "Method", "answer",
    "naive_what_if",
    # persistence (the service package is imported on demand: `repro.service`)
    "HistoryStore",
]
