"""Concurrent what-if service: HTTP server, client, wire formats.

The serving half of the service subsystem (the persistence half is
:mod:`repro.store`): a stdlib ``ThreadingHTTPServer`` exposing stored
histories and single/batched what-if answering with a per-history,
append-invalidated result cache.  See DESIGN.md, "Service architecture"
and the CLI's ``serve`` command.
"""

from .client import ServiceClient, ServiceClientError
from .resilience import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    Overloaded,
    ResilienceConfig,
    ServiceError,
    backoff_delay,
)
from .server import WhatIfServer, WhatIfService
from .wire import (
    METHODS,
    SpecError,
    delta_payload,
    modifications_from_spec,
    result_payload,
)

__all__ = [
    "METHODS",
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "Overloaded",
    "ResilienceConfig",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "SpecError",
    "WhatIfServer",
    "WhatIfService",
    "backoff_delay",
    "delta_payload",
    "modifications_from_spec",
    "result_payload",
]
