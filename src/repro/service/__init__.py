"""Concurrent what-if service: HTTP server, client, wire formats.

The serving half of the service subsystem (the persistence half is
:mod:`repro.store`): a stdlib ``ThreadingHTTPServer`` exposing stored
histories and single/batched what-if answering with a per-history,
append-invalidated result cache.  See DESIGN.md, "Service architecture"
and the CLI's ``serve`` command.
"""

from .client import ServiceClient, ServiceClientError
from .server import ServiceError, WhatIfServer, WhatIfService
from .wire import (
    METHODS,
    SpecError,
    delta_payload,
    modifications_from_spec,
    result_payload,
)

__all__ = [
    "METHODS",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "SpecError",
    "WhatIfServer",
    "WhatIfService",
    "delta_payload",
    "modifications_from_spec",
    "result_payload",
]
