"""The concurrent what-if service.

Two layers (see DESIGN.md, "Service architecture"):

* :class:`WhatIfService` — the HTTP-agnostic engine: named persistent
  histories (each a :class:`~repro.store.HistoryStore` under one root
  directory), a shared :class:`~repro.core.Mahif` engine per backend,
  and a per-history **result cache** keyed by ``(history length, query
  fingerprint)``.  Appends invalidate incrementally: an entry is dropped
  only when an appended statement accesses a relation in the entry's
  delta; every other entry is re-keyed to the new history length and
  keeps serving hits (the cache-invalidation contract is proved in
  DESIGN.md).
* :class:`WhatIfServer` — a stdlib ``ThreadingHTTPServer`` wrapping the
  service in a small JSON API.  One OS thread per request; the service
  layer is safe for concurrent use (immutable histories/databases, a
  per-history lock around store appends and cache mutations, answers
  computed outside any lock).

API (all request/response bodies are JSON)::

    GET  /health                      liveness + history names
    GET  /metrics                     Prometheus text scrape (see
                                      DESIGN.md, "Observability")
    GET  /histories                   list histories with lengths
    POST /histories                   {name, database, history_sql?|history?,
                                       checkpoint_interval?}
    GET  /histories/<name>            info incl. checkpoint versions
    POST /histories/<name>/append     {statements_sql?|statements?}
    POST /histories/<name>/whatif     {modifications, method?, backend?,
                                       shards?}
    POST /histories/<name>/batch      {queries: [spec...], method?,
                                       backend?, workers?, shards?}

Single queries run through :meth:`Mahif.answer_batch` with a one-element
batch so both endpoints share the same machinery — shared time travel
(the store's checkpoint-reconstructed version is injected, never a full
prefix replay) and, within a batch, shared reenactment plans.
"""

from __future__ import annotations

import json
import re
import shutil
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Sequence

from ..core import HistoricalWhatIfQuery, Mahif, MahifConfig, Method
from ..core.engine import _statement_share_key
from ..relational import BACKENDS
from ..relational.database import Database
from ..relational.history import History
from ..relational.parser import ParseError, parse_history
from ..relational.statements import Statement
from ..store import (
    CodecError,
    DEFAULT_CHECKPOINT_INTERVAL,
    HistoryStore,
    StoreError,
    decode_database,
    decode_statement,
)
from .resilience import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    IdempotencyCache,
    InFlightTracker,
    Overloaded,
    ResilienceConfig,
    ServiceError,
    resilience_snapshot,
)
from ..core.planner import AUTO_SHARDS
from ..obs import trace
from ..obs.logging import log_event
from ..obs.metrics import MetricsRegistry, global_registry
from .wire import (
    METHODS,
    SpecError,
    modifications_from_spec,
    normalize_shards,
    result_payload,
)

__all__ = ["ServiceError", "WhatIfService", "WhatIfServer"]

_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: Upper bound on per-request shard counts.  Engines are cached per
#: (backend, shards), so an unbounded client-chosen count would let a
#: client grow that map without limit; beyond ~CPU-count shards there
#: is no win anyway.
MAX_SHARDS = 64


@dataclass
class _CacheEntry:
    """One cached answer plus the relations its delta touches (the
    invalidation footprint — empty-delta relations are excluded, which
    is exactly what makes retention across appends sound)."""

    payload: dict
    delta_relations: frozenset[str]


@dataclass
class _HistoryHandle:
    name: str
    store: HistoryStore
    initial: Database
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: Memoized ``store.history()`` — rebuilding the statement tuple per
    #: request is O(history length) on the cache-hit hot path.  Reset to
    #: None by append().
    history: History | None = None
    #: (history length, fingerprint) -> entry; all live keys carry the
    #: current length (entries are re-keyed or dropped on append).
    cache: dict[tuple, _CacheEntry] = field(default_factory=dict)
    #: fingerprint -> the shard count the adaptive planner last chose
    #: for it, so ``shards="auto"`` requests resolve to the *chosen*
    #: count's cache key and share entries with explicit requests that
    #: match it (see DESIGN.md, "Adaptive planning").
    auto_choices: dict[tuple, int] = field(default_factory=dict)
    #: idempotency key -> recorded append response (bounded LRU), so a
    #: client retry after a lost response never double-appends.
    idempotency: IdempotencyCache = field(
        default_factory=IdempotencyCache
    )


class WhatIfService:
    """Engine-level service: stores, engines, result caches.

    ``root`` is the directory persistent histories live under (one
    subdirectory per history); existing stores are reopened on startup,
    so the service resumes exactly where the last process stopped.
    """

    def __init__(
        self,
        root,
        *,
        default_backend: str = "compiled",
        default_method: str = Method.R_PS_DS.value,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        batch_workers: int = 0,
        default_shards: int | str = 1,
        sync: bool = True,
    ) -> None:
        import pathlib

        if default_backend not in BACKENDS:
            raise ServiceError(f"unknown backend {default_backend!r}")
        if default_method not in METHODS:
            raise ServiceError(f"unknown method {default_method!r}")
        if checkpoint_interval < 1:
            raise ServiceError("checkpoint_interval must be >= 1")
        if batch_workers < 0:
            raise ServiceError("batch_workers must be >= 0")
        try:
            default_shards = normalize_shards(default_shards)
        except SpecError as exc:
            raise ServiceError(str(exc)) from None
        if default_shards is None or default_shards > MAX_SHARDS:
            raise ServiceError(
                f"default_shards must be between 1 and {MAX_SHARDS}, "
                f'0, or "auto"'
            )
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.default_backend = default_backend
        self.default_method = default_method
        self.checkpoint_interval = checkpoint_interval
        self.batch_workers = batch_workers
        self.default_shards = default_shards
        #: Power-loss durability for the stores this service owns: fsync
        #: the log on append, the directory on checkpoint rename.
        self.sync = sync
        #: Per-service metrics: result-cache traffic plus the service's
        #: own degradation counters (process-wide pool/shard counters
        #: live in ``repro.core.degradation``'s global registry, merged
        #: into the ``/metrics`` scrape by the server).
        self.metrics = MetricsRegistry()
        self._cache_hits = self.metrics.counter(
            "mahif_result_cache_hits_total",
            "Result-cache hits by history.",
            ("history",),
        )
        self._cache_misses = self.metrics.counter(
            "mahif_result_cache_misses_total",
            "Result-cache misses by history.",
            ("history",),
        )
        self._cache_invalidations = self.metrics.counter(
            "mahif_result_cache_invalidations_total",
            "Result-cache entries dropped by appends, by history.",
            ("history",),
        )
        self._deadline_timeouts = self.metrics.counter(
            "mahif_deadline_timeouts_total",
            "Compute requests that exceeded their deadline budget (504).",
        )
        self._sqlite_fallbacks = self.metrics.counter(
            "mahif_sqlite_fallbacks_total",
            "Sqlite-backend failures re-answered on the compiled backend.",
        )
        self._handles: dict[str, _HistoryHandle] = {}
        self._handles_lock = threading.Lock()
        #: One shared engine per (backend, shard count) — shards are part
        #: of the key because MahifConfig is frozen per engine.
        self._engines: dict[tuple[str, int], Mahif] = {}
        self._engines_lock = threading.Lock()
        self.skipped_on_startup: dict[str, str] = {}
        for entry in sorted(self.root.iterdir()):
            if (entry / "META.json").is_file():
                try:
                    store = HistoryStore.open(entry, sync=sync)
                except StoreError as exc:
                    # One unrecoverable directory (e.g. a crash between
                    # META and the base checkpoint during create) must
                    # not take down every healthy history under root.
                    self.skipped_on_startup[entry.name] = str(exc)
                    log_event(
                        "history_skipped",
                        history=entry.name,
                        error=str(exc),
                    )
                    continue
                self._handles[entry.name] = _HistoryHandle(
                    entry.name, store, store.initial()
                )

    def close(self) -> None:
        with self._handles_lock:
            for handle in self._handles.values():
                if handle is not None:
                    handle.store.close()
            self._handles.clear()

    # -- history management ---------------------------------------------------
    def history_names(self) -> list[str]:
        with self._handles_lock:
            return sorted(
                name
                for name, handle in self._handles.items()
                if handle is not None
            )

    def register(
        self,
        name: str,
        database: Database,
        history: History | None = None,
        *,
        checkpoint_interval: int | None = None,
    ) -> dict:
        """Create a new stored history; returns its info payload."""
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ServiceError(
                "history name must match [A-Za-z0-9_.-]{1,64}"
            )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ServiceError("checkpoint_interval must be >= 1")
        if history is not None:
            # Validate before creating anything on disk: a bad history
            # must not leave an empty store squatting on the name.
            state = database
            for stmt in history:
                try:
                    state = stmt.apply(state)
                except Exception as exc:
                    raise ServiceError(
                        f"invalid history statement {stmt!r}: {exc}"
                    ) from None
        with self._handles_lock:
            if name in self._handles:
                raise ServiceError(
                    f"history {name!r} already exists", status=409
                )
            # Reserve the name, then create the store outside the global
            # lock: writing the base checkpoint is O(database) disk I/O
            # and must not stall requests against other histories.
            self._handles[name] = None
        store = None
        try:
            if (self.root / name / "META.json").exists():
                # A store directory we did not open (e.g. skipped as
                # broken at startup): never delete it, never reuse the
                # name.  Distinct wording from the handle-duplicate 409
                # so clients can tell the two apart.
                raise ServiceError(
                    f"name {name!r} is taken by an existing store "
                    "directory under the service root", status=409,
                )
            store = HistoryStore.create(
                self.root / name,
                database,
                checkpoint_interval=(
                    checkpoint_interval
                    if checkpoint_interval is not None
                    else self.checkpoint_interval
                ),
                sync=self.sync,
            )
            # Append the initial history while the name is still only a
            # reservation (other requests see 409 "being created"), so
            # no concurrent append can interleave ahead of it; it was
            # validated above, before anything touched the disk.  The
            # validated states double as the store's apply results.
            if history is not None and len(history) > 0:
                state = database
                for stmt in history:
                    state = stmt.apply(state)
                    store.append(stmt, state=state)
        except BaseException as exc:
            # Leave no partial store behind: a failed registration must
            # be fully retryable, and a restart must not resurrect a
            # truncated history the client was told failed.
            with self._handles_lock:
                self._handles.pop(name, None)
            if store is not None:
                store.close()
                shutil.rmtree(self.root / name, ignore_errors=True)
            if isinstance(exc, ServiceError):
                raise
            if isinstance(exc, StoreError):
                raise ServiceError(str(exc), status=409) from None
            raise
        with self._handles_lock:
            self._handles[name] = _HistoryHandle(name, store, database)
        return self.info(name)

    def _handle(self, name: str) -> _HistoryHandle:
        with self._handles_lock:
            try:
                handle = self._handles[name]
            except KeyError:
                raise ServiceError(
                    f"no history named {name!r}", status=404
                ) from None
        if handle is None:  # reserved: registration still in flight
            raise ServiceError(
                f"history {name!r} is still being created", status=409
            )
        return handle

    def info(self, name: str) -> dict:
        handle = self._handle(name)
        with handle.lock:
            store = handle.store
            return {
                "name": name,
                "length": len(store),
                "relations": store.current.relation_names(),
                "checkpoint_interval": store.checkpoint_interval,
                "checkpoints": list(store.checkpoint_versions()),
                "cache": {
                    "entries": len(handle.cache),
                    "hits": int(self._cache_hits.value(history=name)),
                    "misses": int(self._cache_misses.value(history=name)),
                },
            }

    def append(
        self,
        name: str,
        statements: Sequence[Statement],
        *,
        idempotency_key: str | None = None,
    ) -> dict:
        """Durably append statements; incrementally invalidate the cache.

        An appended statement can change a cached answer only if it
        reads or writes a relation whose cached delta is non-empty (all
        other relations hold identical content in both the original and
        the hypothetical branch, so the statement acts identically on
        the two).  Entries with a disjoint footprint stay valid and are
        re-keyed to the new history length; the rest are dropped.

        ``idempotency_key`` makes the append replay-safe: a key seen
        before returns the originally recorded response (marked
        ``"idempotent_replay": true``) without appending again, so a
        client retrying a lost response cannot double-append.  One key
        names one logical request — reusing a key with different
        statements replays the original outcome.
        """
        if not statements:
            raise ServiceError("append requires at least one statement")
        if idempotency_key is not None and (
            not isinstance(idempotency_key, str)
            or not 1 <= len(idempotency_key) <= 200
        ):
            raise ServiceError(
                "idempotency_key must be a string of 1..200 characters"
            )
        handle = self._handle(name)
        with handle.lock:
            if idempotency_key is not None:
                recorded = handle.idempotency.get(idempotency_key)
                if recorded is not None:
                    return {**recorded, "idempotent_replay": True}
            # Validate the whole batch before any durable write, so a
            # bad statement in the middle cannot persist a partial
            # prefix (a 400, not a half-applied 500).  The validated
            # states double as the store's apply results below.
            states: list[Database] = []
            state = handle.store.current
            for stmt in statements:
                try:
                    state = stmt.apply(state)
                except Exception as exc:
                    raise ServiceError(
                        f"invalid statement {stmt!r}: {exc}"
                    ) from None
                states.append(state)
            appended = 0
            dropped = retained_count = 0
            try:
                for stmt, new_state in zip(statements, states):
                    handle.store.append(stmt, state=new_state)
                    appended += 1
            except StoreError as exc:
                # A rolled-back transient failure before anything
                # persisted is cleanly retryable (503 + Retry-After); a
                # mid-batch failure persisted a prefix, so a blind retry
                # would double-append it — surface that as a 500 with
                # the count, never as retryable.
                if exc.retryable and appended == 0:
                    raise Overloaded(
                        f"append failed transiently and was rolled "
                        f"back: {exc}", 0.25,
                    ) from None
                raise ServiceError(
                    f"append persisted only {appended}/"
                    f"{len(statements)} statements: {exc}", status=500,
                ) from None
            finally:
                # Invalidate for exactly the statements that became
                # durable — even if a later store write failed, the
                # cache must not keep entries the persisted prefix
                # already invalidated.
                if appended:
                    handle.history = None  # memo invalid: log advanced
                    accessed: set[str] = set()
                    for stmt in statements[:appended]:
                        accessed |= stmt.accessed_relations()
                    new_length = len(handle.store)
                    retained: dict[tuple, _CacheEntry] = {}
                    for key, entry in handle.cache.items():
                        _, shards, fingerprint = key
                        if entry.delta_relations & accessed:
                            dropped += 1
                        else:
                            retained[
                                (new_length, shards, fingerprint)
                            ] = entry
                    handle.cache = retained
                    retained_count = len(retained)
                    if dropped:
                        self._cache_invalidations.inc(dropped, history=name)
                    span_ = trace.current_span()
                    if span_ is not None:
                        span_.add_event(
                            "cache_invalidate",
                            history=name,
                            dropped=dropped,
                            retained=retained_count,
                        )
            response = {
                "name": name,
                "length": new_length,
                "cache_dropped": dropped,
                "cache_retained": retained_count,
            }
            if idempotency_key is not None:
                handle.idempotency.put(idempotency_key, response)
        return response

    # -- answering ------------------------------------------------------------
    def _engine(self, backend: str, shards: int) -> Mahif:
        if backend not in BACKENDS:
            raise ServiceError(f"unknown backend {backend!r}")
        with self._engines_lock:
            engine = self._engines.get((backend, shards))
            if engine is None:
                engine = Mahif(MahifConfig(backend=backend, shards=shards))
                self._engines[(backend, shards)] = engine
            return engine

    @staticmethod
    def _fingerprint(method: Method, backend: str, modifications) -> tuple:
        # The shard count is *not* part of this base key — it joins the
        # cache key alongside the history length, always as the
        # *effective* count an answer executed with.  Sharded and
        # unsharded answers are proved (and differentially tested)
        # identical, but the cached payload records the configuration it
        # was computed under — serving a shards=4 payload to a shards=1
        # request would misreport it, so the cache never crosses
        # *effective* shard counts; ``shards="auto"`` requests resolve
        # through ``handle.auto_choices`` to the planner's chosen count
        # and thereby share entries with matching explicit requests.
        parts = []
        for mod in modifications:
            stmt = getattr(mod, "statement", None)
            parts.append(
                (
                    type(mod).__name__,
                    mod.position,
                    _statement_share_key(stmt) if stmt is not None else None,
                )
            )
        key = (method.value, backend, tuple(parts))
        try:
            hash(key)
        except TypeError:  # unhashable constant: bypass the cache
            return None
        return key

    def answer(
        self,
        name: str,
        specs: Sequence[Any],
        *,
        method: str | None = None,
        backend: str | None = None,
        workers: int | None = None,
        shards: int | str | None = None,
        deadline: Deadline | None = None,
        explain: bool = False,
    ) -> list[dict]:
        """Answer one spec per entry over the named stored history.

        Cache hits are returned immediately; misses are answered in one
        ``answer_batch`` call (shared time travel + shared plans across
        the missing queries) with each start version reconstructed from
        the store's nearest checkpoint.  ``shards`` > 1 answers through
        the sharded execution path (DESIGN.md, "Sharded execution");
        ``shards="auto"``/``0`` lets the cost-based planner decide per
        query — each response then records the ``planner`` decision and
        its ``shards`` field reports the *chosen* count, under which the
        answer is also cached.

        ``deadline`` bounds the miss computation server-side: on expiry
        the call raises :class:`~repro.service.resilience.
        DeadlineExceeded` (504) while the abandoned computation may
        still finish in the background and populate the cache.  A
        sqlite-backend failure degrades to the compiled backend (the
        answer is backend-invariant by the differential suite); the
        response's ``backend`` field reports what actually answered and
        ``degraded_from`` the backend that failed.

        ``explain=True`` attaches an EXPLAIN ANALYZE per-operator
        ``profile`` to every answer.  Explain requests are diagnostic:
        they bypass the result cache entirely (never read, never
        stored — a cached payload has no profile, and a profiled
        payload must not be served to plain requests) and execute the
        serial unsharded reenactment path.
        """
        backend = backend or self.default_backend
        try:
            method_enum = METHODS[method or self.default_method]
        except KeyError:
            raise ServiceError(f"unknown method {method!r}") from None
        if workers is None:
            workers = self.batch_workers
        try:
            shards = normalize_shards(shards)
        except SpecError as exc:
            raise ServiceError(str(exc)) from None
        if shards is None:
            shards = self.default_shards
        if shards > MAX_SHARDS:
            raise ServiceError(
                f'shards must be between 1 and {MAX_SHARDS}, 0, or "auto"'
            )
        auto = shards == AUTO_SHARDS
        handle = self._handle(name)

        try:
            modifications = [modifications_from_spec(s) for s in specs]
        except SpecError as exc:
            raise ServiceError(str(exc)) from None

        with handle.lock, trace.span("cache", history=name) as cache_span:
            if handle.history is None:
                handle.history = handle.store.history()
            history = handle.history
            length = len(history)
            queries = []
            fingerprints = []
            outcomes: list[dict | None] = []
            for index, mods in enumerate(modifications):
                try:
                    query = HistoricalWhatIfQuery(
                        history, handle.initial, mods
                    )
                except Exception as exc:
                    raise ServiceError(str(exc)) from None
                # Explain requests bypass the cache entirely: a None
                # fingerprint skips both the read here and the store in
                # _resolve_misses.
                fingerprint = (
                    None
                    if explain
                    else self._fingerprint(method_enum, backend, mods)
                )
                entry = None
                if fingerprint is not None:
                    # Auto requests resolve through the planner's last
                    # chosen count for this fingerprint; no choice on
                    # record means a guaranteed miss (the planner runs).
                    resolved = (
                        handle.auto_choices.get(fingerprint)
                        if auto
                        else shards
                    )
                    if resolved is not None:
                        entry = handle.cache.get(
                            (length, resolved, fingerprint)
                        )
                if entry is not None:
                    self._cache_hits.inc(history=name)
                    cache_span.add_event("hit", query=index)
                    # history_length reflects the length the entry is
                    # keyed (and still valid) at, not the length it was
                    # originally computed for.
                    outcomes.append(
                        {
                            **entry.payload,
                            "history_length": length,
                            "cached": True,
                        }
                    )
                    queries.append(None)
                    fingerprints.append(None)
                else:
                    self._cache_misses.inc(history=name)
                    cache_span.add_event("miss", query=index)
                    outcomes.append(None)
                    queries.append(query)
                    fingerprints.append(fingerprint)
            cache_span.set_attributes(
                {
                    "queries": len(modifications),
                    "misses": sum(1 for q in queries if q is not None),
                }
            )
            misses = [q for q in queries if q is not None]
            # Time travel through the store: nearest checkpoint + bounded
            # replay, materialized once per *distinct* prefix, under the
            # lock so the log cannot advance between history snapshot
            # and version load.  NAIVE replays whole histories itself
            # and ignores injected start versions — skip the I/O.
            start_dbs = None
            if misses and method_enum is not Method.NAIVE:
                prefix_lengths = [
                    self._prefix_length(query) for query in misses
                ]
                by_length = {
                    length: handle.store.as_of(length)
                    for length in set(prefix_lengths)
                }
                start_dbs = [
                    by_length[length] for length in prefix_lengths
                ]

        if misses:
            # The deadline path runs the closure on a worker thread;
            # carry the request's active span over so engine spans nest
            # under it instead of vanishing.
            parent_span = trace.current_span()

            def _resolve_misses() -> None:
                with trace.use_span(parent_span):
                    _compute_misses()

            def _compute_misses() -> None:
                answered_backend, degraded_from = self._answer_misses(
                    backend, shards, misses, method_enum, workers,
                    start_dbs, explain,
                )
                results, used_backend = answered_backend
                fresh = iter(results)
                with handle.lock:
                    current_length = len(handle.store)
                    for index, query in enumerate(queries):
                        if query is None:
                            continue
                        result = next(fresh)
                        choice = result.planner_choice
                        # The payload's "shards" is the *effective*
                        # count the answer executed with — the planner's
                        # choice under auto, the request's otherwise —
                        # and the count the entry is cached under.
                        effective = (
                            choice.shards if choice is not None else shards
                        )
                        payload = {
                            **result_payload(result),
                            "history_length": length,
                            "method": method_enum.value,
                            "backend": used_backend,
                            "shards": effective,
                        }
                        if choice is not None:
                            payload["planner"] = choice.payload()
                        if degraded_from is not None:
                            payload["degraded_from"] = degraded_from
                        outcomes[index] = {**payload, "cached": False}
                        fingerprint = fingerprints[index]
                        if fingerprint is not None and auto:
                            handle.auto_choices[fingerprint] = effective
                        if (
                            fingerprint is not None
                            and current_length == length
                        ):
                            delta_relations = frozenset(
                                relation
                                for relation, delta
                                in result.delta.relations.items()
                                if delta.added or delta.removed
                            )
                            handle.cache[
                                (length, effective, fingerprint)
                            ] = _CacheEntry(payload, delta_relations)

            if deadline is not None:
                try:
                    deadline.run(_resolve_misses, "what-if computation")
                except ServiceError as exc:
                    if exc.status == 504:
                        self._deadline_timeouts.inc()
                    raise
            else:
                _resolve_misses()
        return [outcome for outcome in outcomes if outcome is not None]

    def _answer_misses(
        self, backend, shards, misses, method_enum, workers, start_dbs,
        explain=False,
    ):
        """One ``answer_batch`` call with sqlite→compiled degradation.

        Returns ``((results, backend_used), degraded_from)``.  Only
        sqlite has an external moving part (the C library, its
        connections, its temp storage); its errors re-answer on the
        compiled backend, which the three-way differential suite proves
        answer-equivalent.  Compiled/interpreted failures are
        deterministic Python errors and propagate.
        """
        import sqlite3

        engine = self._engine(backend, shards)
        try:
            results = engine.answer_batch(
                misses,
                method_enum,
                workers=workers,
                start_databases=start_dbs,
                explain=explain,
            )
            return (results, backend), None
        except sqlite3.Error as exc:
            if backend != "sqlite":
                raise
            self._sqlite_fallbacks.inc()
            from ..core.degradation import record_degradation

            record_degradation("sqlite_fallback")
            log_event(
                "sqlite_fallback",
                error=str(exc),
                degraded_to="compiled",
            )
            fallback = self._engine("compiled", shards)
            results = fallback.answer_batch(
                misses,
                method_enum,
                workers=workers,
                start_databases=start_dbs,
                explain=explain,
            )
            return (results, "compiled"), "sqlite"

    @staticmethod
    def _prefix_length(query) -> int:
        _, prefix_length = query.aligned().trim_prefix()
        return prefix_length

    @property
    def deadline_timeouts(self) -> int:
        return int(self._deadline_timeouts.value())

    @property
    def sqlite_fallbacks(self) -> int:
        return int(self._sqlite_fallbacks.value())

    def service_stats(self) -> dict:
        """Service-level resilience counters for ``/health`` — read from
        the same registry instruments ``/metrics`` scrapes."""
        return {
            "deadline_timeouts": self.deadline_timeouts,
            "sqlite_fallbacks": self.sqlite_fallbacks,
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON API onto a :class:`WhatIfService`.

    Resilience behavior (see DESIGN.md, "Resilience"): compute routes
    (``whatif``/``batch``) pass admission control — beyond
    ``max_in_flight`` concurrent requests they are shed with 503 +
    ``Retry-After`` — and honor per-request deadline budgets from the
    ``X-Mahif-Deadline-Ms`` header (504 on expiry).  All POST routes
    require a ``Content-Length`` (411) within ``max_body_bytes`` (413).
    While the server drains for shutdown, every non-health request is
    refused 503 so in-flight work can complete.
    """

    service: WhatIfService  # injected by WhatIfServer
    resilience: ResilienceConfig  # injected by WhatIfServer
    admission: AdmissionController  # shared across requests
    tracker: InFlightTracker  # shared across requests
    metrics: MetricsRegistry  # injected by WhatIfServer
    request_seconds: Any  # Histogram, injected by WhatIfServer
    requests_total: Any  # Counter, injected by WhatIfServer
    metrics_enabled = True
    quiet = True
    protocol_version = "HTTP/1.1"

    #: Routes that run engine computation and therefore pass admission
    #: control and deadline budgeting.
    _COMPUTE = re.compile(r"/histories/[^/]+/(whatif|batch)$")

    #: Bounded route labels for metrics — raw paths would be an
    #: unbounded label cardinality (every history name a new series).
    _ROUTE_LABELS = (
        ("health", re.compile(r"^$|^/health$")),
        ("metrics", re.compile(r"^/metrics$")),
        ("append", re.compile(r"^/histories/[^/]+/append$")),
        ("whatif", re.compile(r"^/histories/[^/]+/whatif$")),
        ("batch", re.compile(r"^/histories/[^/]+/batch$")),
        ("info", re.compile(r"^/histories/[^/]+$")),
        ("histories", re.compile(r"^/histories$")),
    )

    @classmethod
    def _route_label(cls, path: str) -> str:
        for label, pattern in cls._ROUTE_LABELS:
            if pattern.match(path):
                return label
        return "other"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    def _reply(
        self,
        payload: dict,
        status: int = 200,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        # Keep-alive hygiene: if a route errored before reading the
        # request body, drain it now — otherwise the unread bytes would
        # be parsed as the next request's request line.  Oversized
        # bodies are not worth draining; close the connection instead.
        if not getattr(self, "_body_consumed", False):
            leftover = int(self.headers.get("Content-Length") or 0)
            if 0 < leftover <= self.resilience.max_body_bytes:
                self.rfile.read(leftover)
            elif leftover:
                self.close_connection = True
            self._body_consumed = True
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None and "trace_id" not in payload:
            payload = {**payload, "trace_id": trace_id}
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Mahif-Trace", trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _body(self) -> dict:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise ServiceError("Content-Length required", status=411)
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceError("Content-Length must be an integer") from None
        if length > self.resilience.max_body_bytes:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{self.resilience.max_body_bytes}-byte limit",
                status=413,
            )
        raw = self.rfile.read(length) if length else b"{}"
        self._body_consumed = True
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _deadline(self) -> Deadline | None:
        """The request's deadline budget: client header, else the
        server-side default for compute routes."""
        header = self.headers.get("X-Mahif-Deadline-Ms")
        if header is not None:
            try:
                ms = float(header)
            except ValueError:
                raise ServiceError(
                    "X-Mahif-Deadline-Ms must be a number"
                ) from None
            if ms <= 0:
                raise DeadlineExceeded("deadline already expired on arrival")
            return Deadline.after_ms(ms)
        if self.resilience.default_deadline_ms is not None:
            return Deadline.after_ms(self.resilience.default_deadline_ms)
        return None

    def _dispatch(self, handler) -> None:
        route = self._route_label(self.path.rstrip("/"))
        # The trace id is assigned (or propagated from X-Mahif-Trace)
        # for *every* request and echoed in the payload and response
        # header; whether spans are recorded is the sampler's call.
        self._trace_id = (
            self.headers.get("X-Mahif-Trace") or trace.new_trace_id()
        )
        self._status = 500
        self.tracker.enter()
        try:
            # Metrics are recorded *before* the reply bytes hit the
            # socket: a client that scrapes immediately after its
            # response must see its own request counted.
            with self.request_seconds.time(route=route), trace.start_trace(
                "request",
                trace_id=self._trace_id,
                route=route,
                method=self.command,
                path=self.path,
            ) as root:
                headers: dict[str, str] | None = None
                try:
                    payload, status = handler()
                except ServiceError as exc:
                    payload, status = {"error": str(exc)}, exc.status
                    if exc.retry_after is not None:
                        headers = {"Retry-After": f"{exc.retry_after:g}"}
                except (StoreError, CodecError, ParseError) as exc:
                    payload, status = {"error": str(exc)}, 400
                except Exception as exc:  # pragma: no cover - defensive
                    payload = {"error": f"internal error: {exc!r}"}
                    status = 500
                root.set_attribute("status", status)
            self.requests_total.inc(route=route, code=str(status))
            self._reply(payload, status=status, headers=headers)
        finally:
            self.tracker.leave()

    def _guard(self, route, *, compute: bool):
        """Drain + admission checks wrapped around a route handler."""
        if self.tracker.draining:
            raise Overloaded(
                "server is shutting down", self.resilience.retry_after
            )
        if compute:
            with self.admission:
                return route()
        return route()

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._body_consumed = False  # per-request, the handler persists
        path = self.path.rstrip("/")
        if path == "/metrics":
            # Like /health, /metrics bypasses the drain/admission guard:
            # a scrape during overload is precisely when the numbers
            # matter most.
            self._route_metrics()
            return
        if path in ("", "/health"):
            # Health stays answerable while draining or overloaded —
            # it is how orchestrators *see* those states.
            self._dispatch(lambda: self._route_health())
            return
        self._dispatch(
            lambda: self._guard(lambda: self._route_get(path), compute=False)
        )

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._body_consumed = False
        path = self.path.rstrip("/")
        compute = self._COMPUTE.fullmatch(path) is not None
        self._dispatch(
            lambda: self._guard(
                lambda: self._route_post(path), compute=compute
            )
        )

    def _route_metrics(self) -> None:
        """Prometheus text scrape: the server's registry (request
        latencies, cache traffic, shed/timeout counters) merged with the
        process-global one (degradation, planner, sqlite cache).  The
        body is rendered to one string and written in a single response,
        so concurrent scrapes never observe torn lines."""
        if not self.metrics_enabled:
            self._trace_id = None
            self.requests_total.inc(route="metrics", code="404")
            self._reply(
                {"error": "metrics are disabled on this server"},
                status=404,
            )
            return
        # Counted before rendering so the scrape includes itself (and a
        # back-to-back scrape never sees a stale count).
        self.requests_total.inc(route="metrics", code="200")
        body = self.metrics.render(global_registry()).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route_health(self):
        service = self.service
        return {
            "ok": True,
            "ready": not self.tracker.draining,
            "histories": service.history_names(),
            "resilience": resilience_snapshot(
                self.admission, self.tracker, service.service_stats()
            ),
        }, 200

    def _route_get(self, path: str):
        service = self.service
        if path == "/histories":
            return {
                "histories": [
                    service.info(name) for name in service.history_names()
                ]
            }, 200
        match = re.fullmatch(r"/histories/([^/]+)", path)
        if match:
            return service.info(match.group(1)), 200
        raise ServiceError(f"no such route GET {path}", status=404)

    def _route_post(self, path: str):
        service = self.service
        if path == "/histories":
            body = self._body()
            name = body.get("name")
            if "database" not in body:
                raise ServiceError('register requires a "database" payload')
            database = decode_database(body["database"])
            if not isinstance(database, Database):
                raise ServiceError(
                    "register requires a set-semantics database"
                )
            history = _statements_of(body, "history")
            interval = _int_of(body, "checkpoint_interval")
            info = service.register(
                name,
                database,
                History(tuple(history)) if history else None,
                checkpoint_interval=interval,
            )
            return info, 201
        match = re.fullmatch(r"/histories/([^/]+)/append", path)
        if match:
            body = self._body()
            statements = _statements_of(body, "statements")
            key = body.get("idempotency_key") or self.headers.get(
                "X-Mahif-Idempotency-Key"
            )
            return service.append(
                match.group(1), statements, idempotency_key=key
            ), 200
        match = re.fullmatch(r"/histories/([^/]+)/whatif", path)
        if match:
            body = self._body()
            if "modifications" not in body:
                raise ServiceError('whatif requires "modifications"')
            results = service.answer(
                match.group(1),
                [body["modifications"]],
                method=body.get("method"),
                backend=body.get("backend"),
                shards=_shards_of(body),
                deadline=self._deadline(),
                explain=bool(body.get("explain")),
            )
            return results[0], 200
        match = re.fullmatch(r"/histories/([^/]+)/batch", path)
        if match:
            body = self._body()
            specs = body.get("queries")
            if not isinstance(specs, list) or not specs:
                raise ServiceError(
                    'batch requires a non-empty "queries" array'
                )
            results = service.answer(
                match.group(1),
                specs,
                method=body.get("method"),
                backend=body.get("backend"),
                workers=_int_of(body, "workers"),
                shards=_shards_of(body),
                deadline=self._deadline(),
                explain=bool(body.get("explain")),
            )
            return {"results": results}, 200
        raise ServiceError(f"no such route POST {path}", status=404)


def _shards_of(body: Mapping) -> int | None:
    """The optional "shards" body field: positive int, 0, or "auto"."""
    try:
        return normalize_shards(body.get("shards"))
    except SpecError as exc:
        raise ServiceError(str(exc)) from None


def _int_of(body: Mapping, key: str) -> int | None:
    """An optional integer body field; bad values are a 400, not a 500."""
    value = body.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ServiceError(f'"{key}" must be an integer')
    try:
        return int(value)
    except ValueError:
        raise ServiceError(f'"{key}" must be an integer') from None


def _statements_of(body: Mapping, key: str) -> list[Statement]:
    """Statements from a request body: ``<key>`` (codec-encoded list)
    and/or ``<key>_sql`` (a ``;``-separated SQL script)."""
    statements: list[Statement] = []
    encoded = body.get(key)
    if encoded is not None:
        if not isinstance(encoded, list):
            raise ServiceError(f'"{key}" must be a list of statements')
        statements.extend(decode_statement(item) for item in encoded)
    sql = body.get(f"{key}_sql")
    if sql:
        try:
            statements.extend(parse_history(sql))
        except ParseError as exc:
            raise ServiceError(f'unparseable "{key}_sql": {exc}') from None
    return statements


class WhatIfServer:
    """A :class:`ThreadingHTTPServer` serving a :class:`WhatIfService`.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  ``start_background()`` serves from a daemon thread
    (tests, benchmarks); ``serve_forever()`` blocks (the CLI).

    ``resilience`` tunes admission control, deadlines, body limits, and
    drain behavior (defaults are production-shaped; see
    :class:`~repro.service.resilience.ResilienceConfig`).
    :meth:`shutdown` is graceful by default: stop accepting, shed new
    requests 503, wait for in-flight requests to complete (up to
    ``drain_timeout``), then flush and close every store.
    """

    def __init__(
        self,
        service: WhatIfService,
        host: str = "127.0.0.1",
        port: int = 8734,
        *,
        quiet: bool = True,
        resilience: ResilienceConfig | None = None,
        metrics: bool = True,
    ) -> None:
        self.resilience = resilience or ResilienceConfig()
        self.admission = AdmissionController(
            self.resilience.max_in_flight, self.resilience.retry_after
        )
        self.tracker = InFlightTracker()
        # Server-owned instruments live on the *service's* registry so
        # one /metrics scrape covers both layers.  When several servers
        # wrap one service (tests mostly), the last one wins the
        # server-scoped names — unregister-then-register keeps repeat
        # construction from raising.
        registry = service.metrics
        registry.unregister("mahif_shed_total")
        registry.register(self.admission.shed_counter)
        registry.unregister("mahif_in_flight")
        registry.gauge(
            "mahif_in_flight",
            "Admitted compute requests currently executing.",
            callback=lambda: self.admission.in_flight,
        )
        self.request_seconds = registry.histogram(
            "mahif_request_seconds",
            "HTTP request latency by route, seconds.",
            ("route",),
        )
        self.requests_total = registry.counter(
            "mahif_requests_total",
            "HTTP requests served, by route and status code.",
            ("route", "code"),
        )
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "service": service,
                "quiet": quiet,
                "resilience": self.resilience,
                "admission": self.admission,
                "tracker": self.tracker,
                "metrics": registry,
                "metrics_enabled": metrics,
                "request_seconds": self.request_seconds,
                "requests_total": self.requests_total,
            },
        )
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start_background(self) -> "WhatIfServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="mahif-whatif-server",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def shutdown(self, *, drain: bool | None = None) -> bool:
        """Stop the server; returns True when the drain fully completed.

        Graceful by default: (1) mark draining, so every new request is
        shed with 503 + Retry-After while health keeps answering with
        ``ready: false``; (2) stop the accept loop; (3) wait up to
        ``drain_timeout`` for in-flight requests to finish writing their
        responses; (4) close the listening socket and flush + close the
        stores.  ``drain=False`` skips step (3) (tests, emergencies).
        """
        if drain is None:
            drain = True
        self.tracker.begin_drain()
        self._httpd.shutdown()
        drained = True
        if drain:
            drained = self.tracker.wait_idle(
                timeout=self.resilience.drain_timeout
            )
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.service.close()
        return drained
