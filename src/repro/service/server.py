"""The concurrent what-if service.

Two layers (see DESIGN.md, "Service architecture"):

* :class:`WhatIfService` — the HTTP-agnostic engine: named persistent
  histories (each a :class:`~repro.store.HistoryStore` under one root
  directory), a shared :class:`~repro.core.Mahif` engine per backend,
  and a per-history **result cache** keyed by ``(history length, query
  fingerprint)``.  Appends invalidate incrementally: an entry is dropped
  only when an appended statement accesses a relation in the entry's
  delta; every other entry is re-keyed to the new history length and
  keeps serving hits (the cache-invalidation contract is proved in
  DESIGN.md).
* :class:`WhatIfServer` — a stdlib ``ThreadingHTTPServer`` wrapping the
  service in a small JSON API.  One OS thread per request; the service
  layer is safe for concurrent use (immutable histories/databases, a
  per-history lock around store appends and cache mutations, answers
  computed outside any lock).

API (all request/response bodies are JSON)::

    GET  /health                      liveness + history names
    GET  /histories                   list histories with lengths
    POST /histories                   {name, database, history_sql?|history?,
                                       checkpoint_interval?}
    GET  /histories/<name>            info incl. checkpoint versions
    POST /histories/<name>/append     {statements_sql?|statements?}
    POST /histories/<name>/whatif     {modifications, method?, backend?,
                                       shards?}
    POST /histories/<name>/batch      {queries: [spec...], method?,
                                       backend?, workers?, shards?}

Single queries run through :meth:`Mahif.answer_batch` with a one-element
batch so both endpoints share the same machinery — shared time travel
(the store's checkpoint-reconstructed version is injected, never a full
prefix replay) and, within a batch, shared reenactment plans.
"""

from __future__ import annotations

import json
import re
import shutil
import sys
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Sequence

from ..core import HistoricalWhatIfQuery, Mahif, MahifConfig, Method
from ..core.engine import _statement_share_key
from ..relational import BACKENDS
from ..relational.database import Database
from ..relational.history import History
from ..relational.parser import ParseError, parse_history
from ..relational.statements import Statement
from ..store import (
    CodecError,
    DEFAULT_CHECKPOINT_INTERVAL,
    HistoryStore,
    StoreError,
    decode_database,
    decode_statement,
)
from .wire import (
    METHODS,
    SpecError,
    modifications_from_spec,
    result_payload,
)

__all__ = ["ServiceError", "WhatIfService", "WhatIfServer"]

_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: Upper bound on per-request shard counts.  Engines are cached per
#: (backend, shards), so an unbounded client-chosen count would let a
#: client grow that map without limit; beyond ~CPU-count shards there
#: is no win anyway.
MAX_SHARDS = 64


class ServiceError(Exception):
    """An error with an HTTP status, reported as ``{"error": ...}``."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _CacheEntry:
    """One cached answer plus the relations its delta touches (the
    invalidation footprint — empty-delta relations are excluded, which
    is exactly what makes retention across appends sound)."""

    payload: dict
    delta_relations: frozenset[str]


@dataclass
class _HistoryHandle:
    name: str
    store: HistoryStore
    initial: Database
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: Memoized ``store.history()`` — rebuilding the statement tuple per
    #: request is O(history length) on the cache-hit hot path.  Reset to
    #: None by append().
    history: History | None = None
    #: (history length, fingerprint) -> entry; all live keys carry the
    #: current length (entries are re-keyed or dropped on append).
    cache: dict[tuple, _CacheEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0


class WhatIfService:
    """Engine-level service: stores, engines, result caches.

    ``root`` is the directory persistent histories live under (one
    subdirectory per history); existing stores are reopened on startup,
    so the service resumes exactly where the last process stopped.
    """

    def __init__(
        self,
        root,
        *,
        default_backend: str = "compiled",
        default_method: str = Method.R_PS_DS.value,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        batch_workers: int = 0,
        default_shards: int = 1,
    ) -> None:
        import pathlib

        if default_backend not in BACKENDS:
            raise ServiceError(f"unknown backend {default_backend!r}")
        if default_method not in METHODS:
            raise ServiceError(f"unknown method {default_method!r}")
        if checkpoint_interval < 1:
            raise ServiceError("checkpoint_interval must be >= 1")
        if batch_workers < 0:
            raise ServiceError("batch_workers must be >= 0")
        if not 1 <= default_shards <= MAX_SHARDS:
            raise ServiceError(
                f"default_shards must be between 1 and {MAX_SHARDS}"
            )
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.default_backend = default_backend
        self.default_method = default_method
        self.checkpoint_interval = checkpoint_interval
        self.batch_workers = batch_workers
        self.default_shards = default_shards
        self._handles: dict[str, _HistoryHandle] = {}
        self._handles_lock = threading.Lock()
        #: One shared engine per (backend, shard count) — shards are part
        #: of the key because MahifConfig is frozen per engine.
        self._engines: dict[tuple[str, int], Mahif] = {}
        self._engines_lock = threading.Lock()
        self.skipped_on_startup: dict[str, str] = {}
        for entry in sorted(self.root.iterdir()):
            if (entry / "META.json").is_file():
                try:
                    store = HistoryStore.open(entry)
                except StoreError as exc:
                    # One unrecoverable directory (e.g. a crash between
                    # META and the base checkpoint during create) must
                    # not take down every healthy history under root.
                    self.skipped_on_startup[entry.name] = str(exc)
                    print(
                        f"warning: skipping history {entry.name!r}: {exc}",
                        file=sys.stderr,
                    )
                    continue
                self._handles[entry.name] = _HistoryHandle(
                    entry.name, store, store.initial()
                )

    def close(self) -> None:
        with self._handles_lock:
            for handle in self._handles.values():
                if handle is not None:
                    handle.store.close()
            self._handles.clear()

    # -- history management ---------------------------------------------------
    def history_names(self) -> list[str]:
        with self._handles_lock:
            return sorted(
                name
                for name, handle in self._handles.items()
                if handle is not None
            )

    def register(
        self,
        name: str,
        database: Database,
        history: History | None = None,
        *,
        checkpoint_interval: int | None = None,
    ) -> dict:
        """Create a new stored history; returns its info payload."""
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ServiceError(
                "history name must match [A-Za-z0-9_.-]{1,64}"
            )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ServiceError("checkpoint_interval must be >= 1")
        if history is not None:
            # Validate before creating anything on disk: a bad history
            # must not leave an empty store squatting on the name.
            state = database
            for stmt in history:
                try:
                    state = stmt.apply(state)
                except Exception as exc:
                    raise ServiceError(
                        f"invalid history statement {stmt!r}: {exc}"
                    ) from None
        with self._handles_lock:
            if name in self._handles:
                raise ServiceError(
                    f"history {name!r} already exists", status=409
                )
            # Reserve the name, then create the store outside the global
            # lock: writing the base checkpoint is O(database) disk I/O
            # and must not stall requests against other histories.
            self._handles[name] = None
        store = None
        try:
            if (self.root / name / "META.json").exists():
                # A store directory we did not open (e.g. skipped as
                # broken at startup): never delete it, never reuse the
                # name.  Distinct wording from the handle-duplicate 409
                # so clients can tell the two apart.
                raise ServiceError(
                    f"name {name!r} is taken by an existing store "
                    "directory under the service root", status=409,
                )
            store = HistoryStore.create(
                self.root / name,
                database,
                checkpoint_interval=(
                    checkpoint_interval
                    if checkpoint_interval is not None
                    else self.checkpoint_interval
                ),
            )
            # Append the initial history while the name is still only a
            # reservation (other requests see 409 "being created"), so
            # no concurrent append can interleave ahead of it; it was
            # validated above, before anything touched the disk.  The
            # validated states double as the store's apply results.
            if history is not None and len(history) > 0:
                state = database
                for stmt in history:
                    state = stmt.apply(state)
                    store.append(stmt, state=state)
        except BaseException as exc:
            # Leave no partial store behind: a failed registration must
            # be fully retryable, and a restart must not resurrect a
            # truncated history the client was told failed.
            with self._handles_lock:
                self._handles.pop(name, None)
            if store is not None:
                store.close()
                shutil.rmtree(self.root / name, ignore_errors=True)
            if isinstance(exc, ServiceError):
                raise
            if isinstance(exc, StoreError):
                raise ServiceError(str(exc), status=409) from None
            raise
        with self._handles_lock:
            self._handles[name] = _HistoryHandle(name, store, database)
        return self.info(name)

    def _handle(self, name: str) -> _HistoryHandle:
        with self._handles_lock:
            try:
                handle = self._handles[name]
            except KeyError:
                raise ServiceError(
                    f"no history named {name!r}", status=404
                ) from None
        if handle is None:  # reserved: registration still in flight
            raise ServiceError(
                f"history {name!r} is still being created", status=409
            )
        return handle

    def info(self, name: str) -> dict:
        handle = self._handle(name)
        with handle.lock:
            store = handle.store
            return {
                "name": name,
                "length": len(store),
                "relations": store.current.relation_names(),
                "checkpoint_interval": store.checkpoint_interval,
                "checkpoints": list(store.checkpoint_versions()),
                "cache": {
                    "entries": len(handle.cache),
                    "hits": handle.hits,
                    "misses": handle.misses,
                },
            }

    def append(self, name: str, statements: Sequence[Statement]) -> dict:
        """Durably append statements; incrementally invalidate the cache.

        An appended statement can change a cached answer only if it
        reads or writes a relation whose cached delta is non-empty (all
        other relations hold identical content in both the original and
        the hypothetical branch, so the statement acts identically on
        the two).  Entries with a disjoint footprint stay valid and are
        re-keyed to the new history length; the rest are dropped.
        """
        if not statements:
            raise ServiceError("append requires at least one statement")
        handle = self._handle(name)
        with handle.lock:
            # Validate the whole batch before any durable write, so a
            # bad statement in the middle cannot persist a partial
            # prefix (a 400, not a half-applied 500).  The validated
            # states double as the store's apply results below.
            states: list[Database] = []
            state = handle.store.current
            for stmt in statements:
                try:
                    state = stmt.apply(state)
                except Exception as exc:
                    raise ServiceError(
                        f"invalid statement {stmt!r}: {exc}"
                    ) from None
                states.append(state)
            appended = 0
            dropped = retained_count = 0
            try:
                for stmt, new_state in zip(statements, states):
                    handle.store.append(stmt, state=new_state)
                    appended += 1
            finally:
                # Invalidate for exactly the statements that became
                # durable — even if a later store write failed, the
                # cache must not keep entries the persisted prefix
                # already invalidated.
                if appended:
                    handle.history = None  # memo invalid: log advanced
                    accessed: set[str] = set()
                    for stmt in statements[:appended]:
                        accessed |= stmt.accessed_relations()
                    new_length = len(handle.store)
                    retained: dict[tuple, _CacheEntry] = {}
                    for (_, fingerprint), entry in handle.cache.items():
                        if entry.delta_relations & accessed:
                            dropped += 1
                        else:
                            retained[(new_length, fingerprint)] = entry
                    handle.cache = retained
                    retained_count = len(retained)
        return {
            "name": name,
            "length": new_length,
            "cache_dropped": dropped,
            "cache_retained": retained_count,
        }

    # -- answering ------------------------------------------------------------
    def _engine(self, backend: str, shards: int) -> Mahif:
        if backend not in BACKENDS:
            raise ServiceError(f"unknown backend {backend!r}")
        with self._engines_lock:
            engine = self._engines.get((backend, shards))
            if engine is None:
                engine = Mahif(MahifConfig(backend=backend, shards=shards))
                self._engines[(backend, shards)] = engine
            return engine

    @staticmethod
    def _fingerprint(
        method: Method, backend: str, shards: int, modifications
    ) -> tuple:
        # The shard count is part of the key: sharded and unsharded
        # answers are proved (and differentially tested) identical, but
        # the cached payload records the configuration it was computed
        # under — serving a shards=4 payload to a shards=1 request would
        # misreport it, so the cache never crosses shard counts.
        parts = []
        for mod in modifications:
            stmt = getattr(mod, "statement", None)
            parts.append(
                (
                    type(mod).__name__,
                    mod.position,
                    _statement_share_key(stmt) if stmt is not None else None,
                )
            )
        key = (method.value, backend, shards, tuple(parts))
        try:
            hash(key)
        except TypeError:  # unhashable constant: bypass the cache
            return None
        return key

    def answer(
        self,
        name: str,
        specs: Sequence[Any],
        *,
        method: str | None = None,
        backend: str | None = None,
        workers: int | None = None,
        shards: int | None = None,
    ) -> list[dict]:
        """Answer one spec per entry over the named stored history.

        Cache hits are returned immediately; misses are answered in one
        ``answer_batch`` call (shared time travel + shared plans across
        the missing queries) with each start version reconstructed from
        the store's nearest checkpoint.  ``shards`` > 1 answers through
        the sharded execution path (DESIGN.md, "Sharded execution").
        """
        backend = backend or self.default_backend
        try:
            method_enum = METHODS[method or self.default_method]
        except KeyError:
            raise ServiceError(f"unknown method {method!r}") from None
        if workers is None:
            workers = self.batch_workers
        if shards is None:
            shards = self.default_shards
        if not 1 <= shards <= MAX_SHARDS:
            raise ServiceError(
                f"shards must be between 1 and {MAX_SHARDS}"
            )
        handle = self._handle(name)

        try:
            modifications = [modifications_from_spec(s) for s in specs]
        except SpecError as exc:
            raise ServiceError(str(exc)) from None

        with handle.lock:
            if handle.history is None:
                handle.history = handle.store.history()
            history = handle.history
            length = len(history)
            queries = []
            fingerprints = []
            outcomes: list[dict | None] = []
            for mods in modifications:
                try:
                    query = HistoricalWhatIfQuery(
                        history, handle.initial, mods
                    )
                except Exception as exc:
                    raise ServiceError(str(exc)) from None
                fingerprint = self._fingerprint(
                    method_enum, backend, shards, mods
                )
                key = (length, fingerprint)
                entry = (
                    handle.cache.get(key)
                    if fingerprint is not None
                    else None
                )
                if entry is not None:
                    handle.hits += 1
                    # history_length reflects the length the entry is
                    # keyed (and still valid) at, not the length it was
                    # originally computed for.
                    outcomes.append(
                        {
                            **entry.payload,
                            "history_length": length,
                            "cached": True,
                        }
                    )
                    queries.append(None)
                    fingerprints.append(None)
                else:
                    handle.misses += 1
                    outcomes.append(None)
                    queries.append(query)
                    fingerprints.append(fingerprint)
            misses = [q for q in queries if q is not None]
            # Time travel through the store: nearest checkpoint + bounded
            # replay, materialized once per *distinct* prefix, under the
            # lock so the log cannot advance between history snapshot
            # and version load.  NAIVE replays whole histories itself
            # and ignores injected start versions — skip the I/O.
            start_dbs = None
            if misses and method_enum is not Method.NAIVE:
                prefix_lengths = [
                    self._prefix_length(query) for query in misses
                ]
                by_length = {
                    length: handle.store.as_of(length)
                    for length in set(prefix_lengths)
                }
                start_dbs = [
                    by_length[length] for length in prefix_lengths
                ]

        if misses:
            engine = self._engine(backend, shards)
            results = engine.answer_batch(
                misses,
                method_enum,
                workers=workers,
                start_databases=start_dbs,
            )
            fresh = iter(results)
            with handle.lock:
                current_length = len(handle.store)
                for index, query in enumerate(queries):
                    if query is None:
                        continue
                    result = next(fresh)
                    payload = {
                        **result_payload(result),
                        "history_length": length,
                        "method": method_enum.value,
                        "backend": backend,
                        "shards": shards,
                    }
                    outcomes[index] = {**payload, "cached": False}
                    fingerprint = fingerprints[index]
                    if fingerprint is not None and current_length == length:
                        delta_relations = frozenset(
                            relation
                            for relation, delta
                            in result.delta.relations.items()
                            if delta.added or delta.removed
                        )
                        handle.cache[(length, fingerprint)] = _CacheEntry(
                            payload, delta_relations
                        )
        return [outcome for outcome in outcomes if outcome is not None]

    @staticmethod
    def _prefix_length(query) -> int:
        _, prefix_length = query.aligned().trim_prefix()
        return prefix_length


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON API onto a :class:`WhatIfService`."""

    service: WhatIfService  # injected by WhatIfServer
    quiet = True
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    def _reply(self, payload: dict, status: int = 200) -> None:
        # Keep-alive hygiene: if a route errored before reading the
        # request body, drain it now — otherwise the unread bytes would
        # be parsed as the next request's request line.
        if not getattr(self, "_body_consumed", False):
            leftover = int(self.headers.get("Content-Length") or 0)
            if leftover:
                self.rfile.read(leftover)
            self._body_consumed = True
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        self._body_consumed = True
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            payload, status = handler()
        except ServiceError as exc:
            self._reply({"error": str(exc)}, status=exc.status)
        except (StoreError, CodecError, ParseError) as exc:
            self._reply({"error": str(exc)}, status=400)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(
                {"error": f"internal error: {exc!r}"}, status=500
            )
        else:
            self._reply(payload, status=status)

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._body_consumed = False  # per-request, the handler persists
        self._dispatch(lambda: self._route_get(self.path.rstrip("/")))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._body_consumed = False
        self._dispatch(lambda: self._route_post(self.path.rstrip("/")))

    def _route_get(self, path: str):
        service = self.service
        if path in ("", "/health"):
            return {"ok": True, "histories": service.history_names()}, 200
        if path == "/histories":
            return {
                "histories": [
                    service.info(name) for name in service.history_names()
                ]
            }, 200
        match = re.fullmatch(r"/histories/([^/]+)", path)
        if match:
            return service.info(match.group(1)), 200
        raise ServiceError(f"no such route GET {path}", status=404)

    def _route_post(self, path: str):
        service = self.service
        if path == "/histories":
            body = self._body()
            name = body.get("name")
            if "database" not in body:
                raise ServiceError('register requires a "database" payload')
            database = decode_database(body["database"])
            if not isinstance(database, Database):
                raise ServiceError(
                    "register requires a set-semantics database"
                )
            history = _statements_of(body, "history")
            interval = _int_of(body, "checkpoint_interval")
            info = service.register(
                name,
                database,
                History(tuple(history)) if history else None,
                checkpoint_interval=interval,
            )
            return info, 201
        match = re.fullmatch(r"/histories/([^/]+)/append", path)
        if match:
            body = self._body()
            statements = _statements_of(body, "statements")
            return service.append(match.group(1), statements), 200
        match = re.fullmatch(r"/histories/([^/]+)/whatif", path)
        if match:
            body = self._body()
            if "modifications" not in body:
                raise ServiceError('whatif requires "modifications"')
            results = service.answer(
                match.group(1),
                [body["modifications"]],
                method=body.get("method"),
                backend=body.get("backend"),
                shards=_int_of(body, "shards"),
            )
            return results[0], 200
        match = re.fullmatch(r"/histories/([^/]+)/batch", path)
        if match:
            body = self._body()
            specs = body.get("queries")
            if not isinstance(specs, list) or not specs:
                raise ServiceError(
                    'batch requires a non-empty "queries" array'
                )
            results = service.answer(
                match.group(1),
                specs,
                method=body.get("method"),
                backend=body.get("backend"),
                workers=_int_of(body, "workers"),
                shards=_int_of(body, "shards"),
            )
            return {"results": results}, 200
        raise ServiceError(f"no such route POST {path}", status=404)


def _int_of(body: Mapping, key: str) -> int | None:
    """An optional integer body field; bad values are a 400, not a 500."""
    value = body.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ServiceError(f'"{key}" must be an integer')
    try:
        return int(value)
    except ValueError:
        raise ServiceError(f'"{key}" must be an integer') from None


def _statements_of(body: Mapping, key: str) -> list[Statement]:
    """Statements from a request body: ``<key>`` (codec-encoded list)
    and/or ``<key>_sql`` (a ``;``-separated SQL script)."""
    statements: list[Statement] = []
    encoded = body.get(key)
    if encoded is not None:
        if not isinstance(encoded, list):
            raise ServiceError(f'"{key}" must be a list of statements')
        statements.extend(decode_statement(item) for item in encoded)
    sql = body.get(f"{key}_sql")
    if sql:
        try:
            statements.extend(parse_history(sql))
        except ParseError as exc:
            raise ServiceError(f'unparseable "{key}_sql": {exc}') from None
    return statements


class WhatIfServer:
    """A :class:`ThreadingHTTPServer` serving a :class:`WhatIfService`.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  ``start_background()`` serves from a daemon thread
    (tests, benchmarks); ``serve_forever()`` blocks (the CLI).
    """

    def __init__(
        self,
        service: WhatIfService,
        host: str = "127.0.0.1",
        port: int = 8734,
        *,
        quiet: bool = True,
    ) -> None:
        handler = type(
            "_BoundHandler", (_Handler,), {"service": service, "quiet": quiet}
        )
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start_background(self) -> "WhatIfServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="mahif-whatif-server",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.service.close()
