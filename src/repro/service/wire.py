"""Wire format shared by the what-if service, its client, and the CLI.

Two payload families:

* **modification specs** — the JSON shape the CLI's ``--batch`` flag
  introduced: an object with any of ``"replace"``/``"insert_stmt"``
  (lists of ``[position, sql]`` pairs) and ``"delete_stmt"`` (a list of
  positions).  :func:`modifications_from_spec` validates and parses one
  spec into the engine's modification tuple,
* **delta payloads** — the JSON rendering of a
  :class:`~repro.core.engine.MahifResult` delta plus its timing fields.
  The service omits relations whose delta is empty (so answers are
  stable under the cache-retention rule — see DESIGN.md, "Service
  architecture"); the CLI's local ``--batch`` path keeps them for
  backward compatibility.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core import DeleteStatementMod, Method, Replace
from ..core.hwq import InsertStatementMod, Modification
from ..core.planner import AUTO_SHARDS
from ..relational.parser import ParseError, parse_statement

__all__ = [
    "SpecError",
    "METHODS",
    "modifications_from_spec",
    "normalize_shards",
    "delta_payload",
    "result_payload",
]

METHODS = {m.value: m for m in Method}


class SpecError(ValueError):
    """A malformed modification-spec payload."""


def normalize_shards(value: Any) -> int | None:
    """Normalize a shards spec shared by server, client and CLI.

    ``None`` stays ``None`` (use the receiver's default); ``"auto"``
    (any case) and ``0`` mean planner-chosen and normalize to
    :data:`~repro.core.planner.AUTO_SHARDS`; positive integers (or
    integer strings, for CLI flags) pass through.  Anything else raises
    :class:`SpecError` with a one-line description.
    """
    if value is None:
        return None
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return AUTO_SHARDS
        try:
            value = int(text)
        except ValueError:
            raise SpecError(
                f'shards must be a positive integer, 0, or "auto"; '
                f"got {value!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(
            f'shards must be a positive integer, 0, or "auto"; '
            f"got {value!r}"
        )
    number = int(value)
    if number != value or number < AUTO_SHARDS:
        raise SpecError(
            f'shards must be a positive integer, 0, or "auto"; '
            f"got {value!r}"
        )
    return number


def modifications_from_spec(spec: Any) -> tuple[Modification, ...]:
    """Parse one modification spec object into modification tuples.

    Raises :class:`SpecError` with a one-line description for every
    malformed shape (wrong container types, missing SQL, non-numeric
    positions, unparseable statements, unknown keys, no modifications).
    """
    if not isinstance(spec, Mapping):
        raise SpecError("modification spec must be a JSON object")
    unknown = set(spec) - {"replace", "delete_stmt", "insert_stmt"}
    if unknown:
        raise SpecError(f"unknown keys {sorted(unknown)} in spec")
    modifications: list[Modification] = []
    try:
        for pos, sql in spec.get("replace") or []:
            modifications.append(Replace(int(pos), parse_statement(sql)))
        for pos in spec.get("delete_stmt") or []:
            modifications.append(DeleteStatementMod(int(pos)))
        for pos, sql in spec.get("insert_stmt") or []:
            modifications.append(
                InsertStatementMod(int(pos), parse_statement(sql))
            )
    except ParseError as exc:
        raise SpecError(f"unparseable statement SQL: {exc}") from None
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"malformed spec: {exc} — expected "
            '{"replace"/"insert_stmt": [[position, sql], ...], '
            '"delete_stmt": [position, ...]}'
        ) from None
    if not modifications:
        raise SpecError("spec contains no modifications")
    return tuple(modifications)


def delta_payload(result, *, include_empty: bool = False) -> dict:
    """The per-relation ``+``/``-`` tuples of one answer as JSON."""
    return {
        relation: {
            "attributes": list(delta.schema.attributes),
            "added": [list(row) for row in sorted(delta.added, key=repr)],
            "removed": [
                list(row) for row in sorted(delta.removed, key=repr)
            ],
        }
        for relation, delta in sorted(result.delta.relations.items())
        if include_empty or delta.added or delta.removed
    }


def result_payload(result, *, include_empty: bool = False) -> dict:
    """One JSON record for an answered what-if query.

    EXPLAIN ANALYZE answers additionally carry ``"profile"``: per
    affected relation, the per-operator time/row-count trees of both
    reenactment queries (see :class:`repro.obs.profile.OperatorProfile`,
    ``payload()`` shape).
    """
    payload = {
        "delta": delta_payload(result, include_empty=include_empty),
        "ps_seconds": result.ps_seconds,
        "exe_seconds": result.exe_seconds,
    }
    profile = getattr(result, "profile", None)
    if profile is not None:
        payload["profile"] = {
            relation: {
                side: prof.payload() for side, prof in sides.items()
            }
            for relation, sides in sorted(profile.items())
        }
    return payload
