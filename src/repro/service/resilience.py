"""Service resilience: deadlines, admission control, graceful shutdown.

The hardening layer between the HTTP handler and the engine (see
DESIGN.md, "Resilience").  Everything here is mechanism, injectable and
clock-parameterized so the contracts are provable in tests without
sleeps:

* :class:`Deadline` — a monotonic per-request time budget, propagated
  from clients via the ``X-Mahif-Deadline-Ms`` header.  :meth:`run`
  executes a computation with a hard server-side timeout: on expiry the
  request gets a fast 504 while the abandoned worker thread finishes
  (and may still populate the result cache) in the background.
* :class:`AdmissionController` — a bounded in-flight slot pool.  When
  all slots are taken, new compute requests are *shed* with 503 +
  ``Retry-After`` instead of queueing without bound: under overload,
  bounded latency for admitted requests beats unbounded latency for
  everyone (goodput over throughput — measured by
  ``benchmarks/bench_resilience.py``).
* :class:`InFlightTracker` — request draining for graceful shutdown:
  new work is refused (503) while in-flight requests run to completion,
  then stores are flushed and closed.
* :class:`IdempotencyCache` — bounded per-history replay cache keyed by
  client-chosen idempotency keys, so a retried append (the client
  retries transport errors it cannot distinguish from lost responses)
  never double-appends.
* :func:`backoff_delay` — the client's exponential-backoff-with-jitter
  schedule, shared here so server defaults and client behavior are
  specified in one place.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from ..core.degradation import degradation_snapshot
from ..obs.metrics import Counter

__all__ = [
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "IdempotencyCache",
    "InFlightTracker",
    "Overloaded",
    "ResilienceConfig",
    "ServiceError",
    "backoff_delay",
    "resilience_snapshot",
]


class ServiceError(Exception):
    """An error with an HTTP status, reported as ``{"error": ...}``.

    ``retryable`` marks errors a client may safely retry (the request
    had no effect); ``retry_after`` is the server's backoff hint in
    seconds, sent as a ``Retry-After`` header.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        *,
        retryable: bool = False,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retryable = retryable
        self.retry_after = retry_after


class Overloaded(ServiceError):
    """503: every in-flight slot is taken (or the server is draining).
    The request was not processed — always safe to retry after backing
    off."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(
            message, status=503, retryable=True, retry_after=retry_after
        )


class DeadlineExceeded(ServiceError):
    """504: the request's deadline budget ran out server-side."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=504)


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for the serving tier's overload and failure behavior."""

    #: Concurrent compute (whatif/batch) requests admitted; beyond this,
    #: requests are shed with 503 + Retry-After.  0 disables admission
    #: control (never shed — benchmark baseline only).
    max_in_flight: int = 32
    #: Backoff hint sent with every 503.
    retry_after: float = 0.25
    #: Server-side default deadline for compute requests when the client
    #: sends none (milliseconds); None = no server-side timeout.
    default_deadline_ms: int | None = None
    #: Largest accepted request body; beyond it the request is refused
    #: with 413 before any of the body is read.
    max_body_bytes: int = 16 * 1024 * 1024
    #: How long graceful shutdown waits for in-flight requests to drain.
    drain_timeout: float = 10.0
    #: Replayable append responses remembered per history.
    idempotency_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.max_in_flight < 0:
            raise ValueError("max_in_flight must be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be > 0")
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms < 1
        ):
            raise ValueError("default_deadline_ms must be >= 1")
        if self.idempotency_capacity < 1:
            raise ValueError("idempotency_capacity must be >= 1")


class Deadline:
    """A monotonic time budget for one request."""

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._expires = clock() + seconds

    @classmethod
    def after_ms(
        cls, ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(ms / 1000.0, clock)

    def remaining(self) -> float:
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str) -> None:
        if self.expired:
            raise DeadlineExceeded(f"deadline exceeded before {what}")

    def run(self, fn: Callable[[], Any], what: str = "computation") -> Any:
        """Run ``fn`` with a hard timeout of the remaining budget.

        The computation runs in a worker thread; on timeout this raises
        :class:`DeadlineExceeded` and the thread is *abandoned* — it
        cannot be cancelled mid-Python, but it is daemonic-by-ownership
        (its side effects are cache writes under locks, which stay
        consistent) and its result is discarded.
        """
        self.check(what)
        outcome: list = [None, None]  # [result, exception]
        done = threading.Event()

        def _worker() -> None:
            try:
                outcome[0] = fn()
            # repro-lint: allow[swallow-baseexception] -- captured only to re-raise in the waiter
            except BaseException as exc:
                outcome[1] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=_worker, name="mahif-deadline-worker", daemon=True
        )
        thread.start()
        if not done.wait(timeout=max(self.remaining(), 0.0)):
            raise DeadlineExceeded(f"deadline exceeded during {what}")
        if outcome[1] is not None:
            raise outcome[1]
        return outcome[0]


class AdmissionController:
    """Bounded in-flight compute slots with shed counting.

    ``limit=0`` disables shedding (every request admitted).  Admission
    is non-blocking by design: a full server answers "come back later"
    in microseconds instead of parking the request on an unbounded
    queue it may never leave.
    """

    def __init__(self, limit: int, retry_after: float) -> None:
        self.limit = limit
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._in_flight = 0
        # The shed count is a pure metric (nothing reads it to make
        # decisions), so it lives in a per-instance obs Counter that the
        # owning server registers onto its /metrics registry — one
        # source of truth for /health and the Prometheus scrape.
        self.shed_counter = Counter(
            "mahif_shed_total",
            "Requests shed by admission control (503 + Retry-After).",
        )

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def shed_total(self) -> int:
        return int(self.shed_counter.value())

    def try_enter(self) -> bool:
        with self._lock:
            if self.limit and self._in_flight >= self.limit:
                shed = True
            else:
                shed = False
                self._in_flight += 1
        if shed:
            self.shed_counter.inc()
        return not shed

    def enter(self) -> None:
        if not self.try_enter():
            raise Overloaded(
                f"server at capacity ({self.limit} in-flight requests); "
                "retry after backoff",
                self.retry_after,
            )

    def leave(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def __enter__(self) -> "AdmissionController":
        self.enter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.leave()


class InFlightTracker:
    """Counts requests being handled, for graceful-shutdown draining."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._count = 0
        self._draining = False

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def enter(self) -> None:
        with self._lock:
            self._count += 1

    def leave(self) -> None:
        with self._lock:
            self._count -= 1
            if self._count == 0:
                self._idle.notify_all()

    def begin_drain(self) -> None:
        with self._lock:
            self._draining = True

    def wait_idle(self, timeout: float) -> bool:
        """Block until no requests are in flight (True) or ``timeout``
        elapses (False)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._count > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
            return True


class IdempotencyCache:
    """Bounded LRU of append responses keyed by client idempotency keys.

    Replaying a key returns the recorded response without re-executing —
    standard idempotency-key semantics: one key names one logical
    request, so a retry with the same key after a lost response must see
    the original outcome, not a second append.  The cache is in-memory
    and per-process: keys do not survive a restart (after which the
    client's retry window has long passed).
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._capacity = capacity
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def get(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, response: dict) -> None:
        self._entries[key] = response
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.1,
    cap: float = 5.0,
    rng: Callable[[], float] | None = None,
) -> float:
    """Delay before retry number ``attempt`` (0-based): exponential
    growth ``base * 2**attempt`` capped at ``cap``, scaled by equal
    jitter in ``[0.5, 1.0]`` so a burst of shed clients does not retry
    in lockstep.  ``rng() -> [0, 1)`` is injectable for deterministic
    tests (defaults to ``random.random``)."""
    if rng is None:
        import random

        rng = random.random
    return min(cap, base * (2.0 ** attempt)) * (0.5 + 0.5 * rng())


def resilience_snapshot(
    admission: AdmissionController,
    tracker: InFlightTracker,
    extra: dict | None = None,
) -> dict:
    """The ``/health`` resilience section: admission + drain state +
    process-wide degradation counters."""
    payload = {
        "in_flight": admission.in_flight,
        "max_in_flight": admission.limit,
        "shed_total": admission.shed_total,
        "draining": tracker.draining,
        "degradation": degradation_snapshot(),
    }
    if extra:
        payload.update(extra)
    return payload
