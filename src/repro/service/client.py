"""Thin stdlib client for the what-if service's JSON API.

Pure ``urllib.request`` — no dependencies beyond the standard library,
mirroring the server side.  Raises :class:`ServiceClientError` carrying
the server's one-line error message (or the transport failure) for any
non-2xx response.

    client = ServiceClient("http://127.0.0.1:8734")
    client.register("orders", database, history_sql=script)
    answer = client.whatif(
        "orders",
        {"replace": [[1, "UPDATE Orders SET Fee = 0 WHERE Price >= 60"]]},
    )
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Sequence

from ..relational.database import Database
from ..relational.history import History
from ..store import encode_database, encode_statement

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A failed service call; ``status`` is the HTTP status (0 when the
    server was unreachable)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Client for one what-if service instance at ``url``."""

    def __init__(self, url: str, *, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _call(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        request = urllib.request.Request(
            f"{self.url}{path}",
            method=method,
            data=(
                json.dumps(body).encode("utf-8")
                if body is not None
                else None
            ),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:
                message = str(exc)
            raise ServiceClientError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"service unreachable at {self.url}: {exc.reason}"
            ) from None

    # -- API ---------------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/health")

    def histories(self) -> list[dict]:
        return self._call("GET", "/histories")["histories"]

    def info(self, name: str) -> dict:
        return self._call("GET", f"/histories/{name}")

    def register(
        self,
        name: str,
        database: Database,
        history: History | None = None,
        *,
        history_sql: str | None = None,
        checkpoint_interval: int | None = None,
    ) -> dict:
        body: dict[str, Any] = {
            "name": name,
            "database": encode_database(database),
        }
        if history is not None:
            body["history"] = [encode_statement(s) for s in history]
        if history_sql:
            body["history_sql"] = history_sql
        if checkpoint_interval is not None:
            body["checkpoint_interval"] = checkpoint_interval
        return self._call("POST", "/histories", body)

    def append(
        self,
        name: str,
        statements: Sequence | None = None,
        *,
        statements_sql: str | None = None,
    ) -> dict:
        body: dict[str, Any] = {}
        if statements:
            body["statements"] = [encode_statement(s) for s in statements]
        if statements_sql:
            body["statements_sql"] = statements_sql
        return self._call("POST", f"/histories/{name}/append", body)

    def whatif(
        self,
        name: str,
        modifications: dict,
        *,
        method: str | None = None,
        backend: str | None = None,
        shards: int | None = None,
    ) -> dict:
        body: dict[str, Any] = {"modifications": modifications}
        if method is not None:
            body["method"] = method
        if backend is not None:
            body["backend"] = backend
        if shards is not None:
            body["shards"] = shards
        return self._call("POST", f"/histories/{name}/whatif", body)

    def whatif_batch(
        self,
        name: str,
        queries: Sequence[dict],
        *,
        method: str | None = None,
        backend: str | None = None,
        workers: int | None = None,
        shards: int | None = None,
    ) -> list[dict]:
        body: dict[str, Any] = {"queries": list(queries)}
        if method is not None:
            body["method"] = method
        if backend is not None:
            body["backend"] = backend
        if workers is not None:
            body["workers"] = workers
        if shards is not None:
            body["shards"] = shards
        return self._call("POST", f"/histories/{name}/batch", body)[
            "results"
        ]
