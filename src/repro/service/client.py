"""Resilient stdlib client for the what-if service's JSON API.

Pure ``urllib.request`` — no dependencies beyond the standard library,
mirroring the server side.  On top of the PR-4 thin transport, the
client now implements the client half of the resilience contract
(DESIGN.md, "Resilience"):

* **Bounded retries with exponential backoff + jitter** on 503 shed
  responses and transport errors, honoring the server's ``Retry-After``
  hint.  The backoff schedule is :func:`~repro.service.resilience.
  backoff_delay`; ``sleep``/``rng``/``clock`` are injectable so the
  schedule is unit-testable without real sleeping.
* **Idempotency keys on append**: every :meth:`append` call carries a
  fresh key, so a retry after a lost response replays the recorded
  outcome server-side instead of double-appending.  Registration is
  *not* transport-retried (a lost 201 is indistinguishable from a lost
  request), but 503s — guaranteed shed before processing — retry for
  every call.
* **Deadline propagation**: a per-call deadline budget caps total time
  across attempts and travels to the server as ``X-Mahif-Deadline-Ms``
  so it can stop computing an answer nobody is waiting for.
* **Trace propagation**: every logical call mints one trace id and
  sends it as ``X-Mahif-Trace`` on *every* attempt, so server-side
  traces stitch retries of one request into a single story.

Raises :class:`ServiceClientError` carrying the server's one-line error
message (or the transport failure), the HTTP status, a machine-readable
``retryable`` flag, and the server's ``retry_after`` hint in seconds.

    client = ServiceClient("http://127.0.0.1:8734", retries=3)
    client.register("orders", database, history_sql=script)
    answer = client.whatif(
        "orders",
        {"replace": [[1, "UPDATE Orders SET Fee = 0 WHERE Price >= 60"]]},
    )
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Callable, Sequence

from ..obs.trace import new_trace_id
from ..relational.database import Database
from ..relational.history import History
from ..store import encode_database, encode_statement
from .resilience import backoff_delay

__all__ = ["ServiceClient", "ServiceClientError"]

#: Statuses that are safe to retry for *any* request: the server sheds
#: 503 before the route runs, so the request had no effect.
_RETRYABLE_STATUSES = frozenset({503})


class ServiceClientError(Exception):
    """A failed service call.

    ``status`` is the HTTP status (0 when the server was unreachable);
    ``retryable`` is True when retrying the same call is safe and might
    succeed (503 sheds, transport errors on idempotent calls);
    ``retry_after`` is the server's backoff hint in seconds, when one
    was sent.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        *,
        retryable: bool = False,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retryable = retryable
        self.retry_after = retry_after


def _retry_after_of(headers) -> float | None:
    value = headers.get("Retry-After") if headers is not None else None
    if value is None:
        return None
    try:
        return max(float(value), 0.0)
    except ValueError:
        return None


class ServiceClient:
    """Client for one what-if service instance at ``url``.

    ``retries`` bounds retry *attempts beyond the first* (0 disables
    retrying).  ``deadline`` is an optional per-call budget in seconds
    across all attempts, propagated to the server.  ``sleep``, ``rng``,
    and ``clock`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        deadline: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] | None = None,
        clock: Callable[[], float] = time.monotonic,
        opener: Callable = urllib.request.urlopen,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.deadline = deadline
        self._sleep = sleep
        self._rng = rng
        self._clock = clock
        self._opener = opener

    # -- transport ---------------------------------------------------------
    def _attempt(
        self,
        method: str,
        path: str,
        body: dict | None,
        timeout: float,
        deadline_ms: float | None,
        trace_id: str | None = None,
    ) -> dict:
        """One HTTP round trip; failures raise :class:`ServiceClientError`
        with ``retryable``/``retry_after`` set."""
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Mahif-Deadline-Ms"] = f"{deadline_ms:.0f}"
        if trace_id is not None:
            headers["X-Mahif-Trace"] = trace_id
        request = urllib.request.Request(
            f"{self.url}{path}",
            method=method,
            data=(
                json.dumps(body).encode("utf-8")
                if body is not None
                else None
            ),
            headers=headers,
        )
        try:
            with self._opener(request, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except (OSError, ValueError, KeyError, TypeError):
                # Body unreadable, not JSON, or not {"error": ...}-shaped
                # (e.g. a proxy's HTML error page): fall back to the
                # status line.
                message = str(exc)
            raise ServiceClientError(
                message,
                status=exc.code,
                retryable=exc.code in _RETRYABLE_STATUSES,
                retry_after=_retry_after_of(exc.headers),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                f"service unreachable at {self.url}: {exc.reason}",
                retryable=True,
            ) from None
        except TimeoutError as exc:
            raise ServiceClientError(
                f"request to {self.url} timed out: {exc}",
                retryable=True,
            ) from None

    def _call(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        retry_transport: bool = True,
    ) -> dict:
        """Issue a request with bounded retries under the call deadline.

        503s retry for every call (the server guarantees a shed request
        had no effect).  Transport errors — where the response, not the
        request, may be what was lost — retry only when
        ``retry_transport`` (idempotent calls: reads, keyed appends,
        what-if answering, which never mutates).
        """
        expires = (
            self._clock() + self.deadline
            if self.deadline is not None
            else None
        )
        # One trace id for the whole logical call: retries reuse it, so
        # the server sees each attempt as part of the same request.
        trace_id = new_trace_id()
        attempt = 0
        while True:
            remaining = (
                expires - self._clock() if expires is not None else None
            )
            if remaining is not None and remaining <= 0:
                raise ServiceClientError(
                    f"client deadline of {self.deadline:g}s exhausted "
                    f"before {method} {path} could complete",
                    status=0,
                    retryable=False,
                )
            timeout = (
                min(self.timeout, remaining)
                if remaining is not None
                else self.timeout
            )
            try:
                return self._attempt(
                    method,
                    path,
                    body,
                    timeout,
                    remaining * 1000.0 if remaining is not None else None,
                    trace_id,
                )
            except ServiceClientError as exc:
                transport = exc.status == 0
                may_retry = exc.retryable and (
                    retry_transport or not transport
                )
                if not may_retry or attempt >= self.retries:
                    raise
                delay = (
                    exc.retry_after
                    if exc.retry_after is not None
                    else backoff_delay(
                        attempt,
                        base=self.backoff_base,
                        cap=self.backoff_cap,
                        rng=self._rng,
                    )
                )
                if expires is not None:
                    budget = expires - self._clock()
                    if budget <= 0:
                        raise
                    delay = min(delay, budget)
                self._sleep(delay)
                attempt += 1

    # -- API ---------------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/health")

    def metrics(self) -> str:
        """The server's Prometheus text exposition, verbatim.

        ``/metrics`` replies ``text/plain`` rather than JSON, so this
        bypasses :meth:`_call` — a single unretried GET (scrapes are
        periodic; the next one covers a lost reply).
        """
        request = urllib.request.Request(
            f"{self.url}/metrics", method="GET"
        )
        try:
            with self._opener(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceClientError(
                str(exc), status=exc.code
            ) from None
        except (urllib.error.URLError, TimeoutError) as exc:
            raise ServiceClientError(
                f"service unreachable at {self.url}: {exc}",
                retryable=True,
            ) from None

    def histories(self) -> list[dict]:
        return self._call("GET", "/histories")["histories"]

    def info(self, name: str) -> dict:
        return self._call("GET", f"/histories/{name}")

    def register(
        self,
        name: str,
        database: Database,
        history: History | None = None,
        *,
        history_sql: str | None = None,
        checkpoint_interval: int | None = None,
    ) -> dict:
        body: dict[str, Any] = {
            "name": name,
            "database": encode_database(database),
        }
        if history is not None:
            body["history"] = [encode_statement(s) for s in history]
        if history_sql:
            body["history_sql"] = history_sql
        if checkpoint_interval is not None:
            body["checkpoint_interval"] = checkpoint_interval
        # Not transport-retried: registration has no idempotency key, so
        # a lost 201 response would replay as a 409.  (503s still retry.)
        return self._call(
            "POST", "/histories", body, retry_transport=False
        )

    def append(
        self,
        name: str,
        statements: Sequence | None = None,
        *,
        statements_sql: str | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        """Append statements; retries are safe by construction.

        Every call carries an idempotency key (a fresh UUID unless
        ``idempotency_key`` pins one), so a retry after a lost response
        replays the recorded outcome server-side instead of appending
        twice.
        """
        body: dict[str, Any] = {
            "idempotency_key": idempotency_key or uuid.uuid4().hex
        }
        if statements:
            body["statements"] = [encode_statement(s) for s in statements]
        if statements_sql:
            body["statements_sql"] = statements_sql
        return self._call("POST", f"/histories/{name}/append", body)

    def whatif(
        self,
        name: str,
        modifications: dict,
        *,
        method: str | None = None,
        backend: str | None = None,
        shards: int | str | None = None,
        explain: bool = False,
    ) -> dict:
        """One what-if answer.  ``shards`` accepts a positive count, or
        ``"auto"``/``0`` for the server-side cost-based planner (the
        response then carries the ``planner`` decision and its
        ``shards`` field reports the chosen count).  ``explain`` asks
        for EXPLAIN ANALYZE: the result gains a per-operator
        ``"profile"`` tree and bypasses the server's result cache."""
        body: dict[str, Any] = {"modifications": modifications}
        if method is not None:
            body["method"] = method
        if backend is not None:
            body["backend"] = backend
        if shards is not None:
            body["shards"] = shards
        if explain:
            body["explain"] = True
        return self._call("POST", f"/histories/{name}/whatif", body)

    def whatif_batch(
        self,
        name: str,
        queries: Sequence[dict],
        *,
        method: str | None = None,
        backend: str | None = None,
        workers: int | None = None,
        shards: int | str | None = None,
        explain: bool = False,
    ) -> list[dict]:
        body: dict[str, Any] = {"queries": list(queries)}
        if method is not None:
            body["method"] = method
        if backend is not None:
            body["backend"] = backend
        if workers is not None:
            body["workers"] = workers
        if shards is not None:
            body["shards"] = shards
        if explain:
            body["explain"] = True
        return self._call("POST", f"/histories/{name}/batch", body)[
            "results"
        ]
