"""Benchmark harness utilities (timing, method runners, table printing)."""

from .harness import (
    RESULTS,
    BatchTiming,
    MethodTiming,
    format_table,
    print_series_table,
    record_result,
    run_batch,
    run_method,
    run_methods,
)
from .reporting import write_bench_report

__all__ = [
    "MethodTiming", "BatchTiming", "run_method", "run_methods", "run_batch",
    "format_table", "print_series_table", "RESULTS", "record_result",
    "write_bench_report",
]
