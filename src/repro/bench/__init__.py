"""Benchmark harness utilities (timing, method runners, table printing)."""

from .harness import (
    RESULTS,
    MethodTiming,
    format_table,
    print_series_table,
    record_result,
    run_method,
    run_methods,
)

__all__ = [
    "MethodTiming", "run_method", "run_methods",
    "format_table", "print_series_table", "RESULTS", "record_result",
]
