"""Convenience re-export: EXPERIMENTS.md generation lives in
``benchmarks/report.py`` (it is part of the benchmark harness, not the
library API); this stub points users there.

    python benchmarks/report.py
"""

__all__: list[str] = []
