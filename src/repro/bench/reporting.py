"""Shared benchmark-report writing.

Every headline benchmark (``benchmarks/bench_backend_compiled.py``,
``bench_batch.py``, ``bench_service.py``) dumps a ``BENCH_*.json`` at
the repo root with the same shape — ``experiment`` tag, a ``workload``
description, then one key per result section.  :func:`write_bench_report`
is that shape in one place, so the payloads cannot drift apart and new
benchmarks get it for free.

(EXPERIMENTS.md generation is separate and lives in
``benchmarks/report.py`` — it is part of the benchmark harness, not the
library API.)
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

__all__ = ["write_bench_report"]


def write_bench_report(
    target: str | pathlib.Path,
    experiment: str,
    workload: Mapping[str, Any],
    **sections: Any,
) -> dict:
    """Write one ``BENCH_*.json`` payload; returns the payload dict.

    ``workload`` describes the fixed parameters of the run (dataset,
    sizes, metric); each keyword argument becomes one result section.
    The file always ends with a newline and is indented for diffing.
    """
    payload: dict[str, Any] = {
        "experiment": experiment,
        "workload": dict(workload),
        **sections,
    }
    pathlib.Path(target).write_text(json.dumps(payload, indent=2) + "\n")
    return payload
