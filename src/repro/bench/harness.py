"""Benchmark harness: method runners, phase breakdowns, table printing.

Every figure/table benchmark builds a :class:`~repro.workloads.generator.
Workload`, runs the selected methods through :func:`run_method`, and
prints the same rows/series the paper's figure reports via
:func:`print_series_table`.  Results are also accumulated in a process-
wide registry so a session can dump everything at the end (EXPERIMENTS.md
was produced this way).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..core.engine import Mahif, MahifConfig, MahifResult, Method
from ..core.hwq import HistoricalWhatIfQuery
from ..workloads.generator import Workload, WorkloadSpec, build_workload

__all__ = [
    "MethodTiming",
    "BatchTiming",
    "run_method",
    "run_methods",
    "run_batch",
    "print_series_table",
    "format_table",
    "RESULTS",
    "record_result",
]

#: Process-wide registry of (experiment, row-dict) pairs, guarded by
#: ``_RESULTS_LOCK`` (benchmarks may record from pool callbacks).
RESULTS: list[tuple[str, dict[str, Any]]] = []
_RESULTS_LOCK = threading.Lock()


def record_result(experiment: str, row: dict[str, Any]) -> None:
    with _RESULTS_LOCK:
        RESULTS.append((experiment, dict(row)))


@dataclass(frozen=True)
class MethodTiming:
    """Wall-clock result of answering one HWQ with one method."""

    method: Method
    total_seconds: float
    ps_seconds: float
    exe_seconds: float
    delta_size: int
    result: MahifResult

    @property
    def label(self) -> str:
        return self.method.value


def run_method(
    query: HistoricalWhatIfQuery,
    method: Method,
    config: MahifConfig | None = None,
) -> MethodTiming:
    """Answer ``query`` with ``method`` and collect the paper's timings."""
    engine = Mahif(config)
    start = time.perf_counter()
    result = engine.answer(query, method)
    total = time.perf_counter() - start
    return MethodTiming(
        method=method,
        total_seconds=total,
        ps_seconds=result.ps_seconds,
        exe_seconds=result.exe_seconds,
        delta_size=len(result.delta),
        result=result,
    )


@dataclass(frozen=True)
class BatchTiming:
    """Wall-clock result of answering a batch of HWQs with one method.

    ``total_seconds`` is the end-to-end wall time of the whole batch —
    the figure the batched-answering benchmark compares against a
    sequential ``answer`` loop over the same queries.
    """

    method: Method
    total_seconds: float
    results: tuple[MahifResult, ...]

    @property
    def deltas(self) -> tuple:
        return tuple(result.delta for result in self.results)


def run_batch(
    queries: Sequence[HistoricalWhatIfQuery],
    method: Method,
    config: MahifConfig | None = None,
    *,
    workers: int | None = None,
) -> BatchTiming:
    """Answer a batch of HWQs in one :meth:`Mahif.answer_batch` call."""
    engine = Mahif(config)
    start = time.perf_counter()
    results = engine.answer_batch(queries, method, workers=workers)
    total = time.perf_counter() - start
    return BatchTiming(
        method=method, total_seconds=total, results=tuple(results)
    )


def run_methods(
    query: HistoricalWhatIfQuery,
    methods: Sequence[Method],
    config: MahifConfig | None = None,
) -> dict[Method, MethodTiming]:
    """Run several methods over the same query (deltas cross-checked)."""
    timings: dict[Method, MethodTiming] = {}
    reference_delta = None
    for method in methods:
        timing = run_method(query, method, config)
        timings[method] = timing
        if reference_delta is None:
            reference_delta = timing.result.delta
        elif timing.result.delta != reference_delta:
            raise AssertionError(
                f"method {method.value} returned a different delta than "
                f"{methods[0].value} — correctness bug"
            )
    return timings


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Fixed-width table rendering."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in materialized))
        if materialized
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_series_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    note: str = "",
    file: Any = None,
) -> None:
    """Print one figure's table with an optional expected-shape note.

    Defaults to ``sys.__stdout__`` so the series reach the console (and
    any ``tee``) even under pytest's output capturing — benchmark tables
    are the deliverable, not debug noise.
    """
    import sys

    out = file if file is not None else sys.__stdout__
    # repro-lint: allow[no-print] -- benchmark tables are the deliverable
    print(file=out)
    # repro-lint: allow[no-print] -- benchmark tables are the deliverable
    print(f"### {title}", file=out)
    # repro-lint: allow[no-print] -- benchmark tables are the deliverable
    print(format_table(headers, rows), file=out)
    if note:
        # repro-lint: allow[no-print] -- benchmark tables are the deliverable
        print(f"(paper shape: {note})", file=out)
    out.flush()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.4f}" if value < 1 else f"{value:.2f}"
    return str(value)
