"""Expansion semantics for updates over VC-tables (Section 8.2, first
encoding).

Before introducing the fresh-variable encoding of Definition 6, the paper
sketches the direct encoding: an update turns every tuple ``t`` into *two*
tuples —

* ``t`` guarded by ``phi(t) ∧ ¬theta(t)`` (the update did not apply), and
* ``Set(t)`` guarded by ``phi(t) ∧ theta(t)`` (it did),

merging duplicates by disjoining their local conditions.  The result
needs no global condition but can grow ``2^n``-fold over ``n`` updates —
which is exactly why Definition 6 exists.  We implement it anyway:

* it is the simplest executable specification of possible-world update
  semantics, so the tests use it as an *oracle* against the Definition-6
  encoding, and
* the blow-up is measurable, which makes the paper's complexity argument
  a unit test instead of a claim.
"""

from __future__ import annotations

from ..relational.expressions import (
    Expr,
    Not,
    TRUE,
    and_,
    or_,
    simplify,
    substitute_attributes,
)
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)
from .symexec import SymbolicExecutionError
from .vctable import SymbolicTuple, VCDatabase, VCTable

__all__ = ["apply_statement_expansion", "execute_history_expansion"]


def _bind(expr: Expr, symbolic_tuple: SymbolicTuple) -> Expr:
    return substitute_attributes(expr, dict(symbolic_tuple.values))


def apply_statement_expansion(
    db: VCDatabase, stmt: Statement
) -> VCDatabase:
    """Apply one statement with the tuple-doubling encoding."""
    if isinstance(stmt, InsertQuery):
        raise SymbolicExecutionError(
            "INSERT ... SELECT cannot be executed symbolically"
        )
    table = db[stmt.relation]

    if isinstance(stmt, UpdateStatement):
        merged: dict[SymbolicTuple, Expr] = {}

        def add(symbolic_tuple: SymbolicTuple, condition: Expr) -> None:
            condition = simplify(condition)
            if condition == Not(TRUE) or condition == simplify(Not(TRUE)):
                return
            existing = merged.get(symbolic_tuple)
            merged[symbolic_tuple] = (
                condition if existing is None
                else simplify(or_(existing, condition))
            )

        for symbolic_tuple, local in table:
            theta = _bind(stmt.condition, symbolic_tuple)
            # branch 1: condition false, tuple unchanged
            add(symbolic_tuple, and_(local, Not(theta)))
            # branch 2: condition true, Set applied (symbolically)
            updated_values = dict(symbolic_tuple.values)
            for attribute, expr in stmt.set_clauses.items():
                updated_values[attribute] = simplify(
                    _bind(expr, symbolic_tuple)
                )
            add(SymbolicTuple(updated_values), and_(local, theta))
        rows = tuple(
            (t, condition)
            for t, condition in merged.items()
            if simplify(condition) != simplify(Not(TRUE))
        )
        return db.with_table(stmt.relation, VCTable(table.schema, rows))

    if isinstance(stmt, DeleteStatement):
        rows = tuple(
            (t, simplify(and_(local, Not(_bind(stmt.condition, t)))))
            for t, local in table
        )
        return db.with_table(stmt.relation, VCTable(table.schema, rows))

    if isinstance(stmt, InsertTuple):
        from ..relational.expressions import Const

        inserted = SymbolicTuple(
            {
                attribute: Const(value)
                for attribute, value in zip(table.schema, stmt.values)
            }
        )
        return db.with_table(
            stmt.relation,
            VCTable(table.schema, table.rows + ((inserted, TRUE),)),
        )

    raise SymbolicExecutionError(f"unsupported statement {stmt!r}")


def execute_history_expansion(db: VCDatabase, history) -> VCDatabase:
    """Execute a whole history with the expansion encoding."""
    for stmt in history:
        db = apply_statement_expansion(db, stmt)
    return db
