"""Symbolic execution of statements over VC-tables (Definition 6).

Updates produce, for every input tuple ``t``, a tuple of fresh variables
``t_new`` constrained by the global condition::

    x_{t,A_i} = if theta(t) then e_i(t) else t.A_i

so the result of a history over a single-tuple instance stays a single
tuple and the global condition grows by at most ``|Set|`` conjuncts per
statement — the linear-size encoding that avoids the 2^n blow-up the paper
discusses.  Deletes conjoin ``not theta(t)`` onto local conditions;
constant inserts add the concrete tuple with local condition ``true``.
Inserts with queries are rejected (they are not tuple independent; Section
10 splits them away before slicing).

Variables reuse the paper's naming scheme ``x_{A,i}`` (attribute ``A``
after the ``i``-th statement); attributes untouched by a statement keep
their previous variable, the optimization noted below Definition 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..relational.expressions import (
    Expr,
    If,
    Not,
    TRUE,
    Var,
    and_,
    eq,
    simplify,
    substitute_attributes,
)
from ..relational.history import History
from ..relational.schema import Schema
from ..relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)
from .vctable import SymbolicTuple, VCDatabase, VCTable

__all__ = [
    "SymbolicExecutionError",
    "VariableNamer",
    "apply_statement",
    "execute_history",
    "SingleTupleRun",
    "run_history_single_tuple",
    "prune_defining_conjuncts",
]


class SymbolicExecutionError(Exception):
    """Raised when a statement cannot be executed symbolically."""


class VariableNamer:
    """Generates the paper's ``x_{A,i}`` variable names, namespaced by a
    run prefix so several histories can share one formula without clashes
    (the renaming requirement of Section 8.3.2)."""

    def __init__(self, prefix: str = "x") -> None:
        self.prefix = prefix
        self._versions: dict[str, int] = {}

    def fresh(self, attribute: str) -> Var:
        version = self._versions.get(attribute, 0) + 1
        self._versions[attribute] = version
        return Var(f"{self.prefix}_{attribute}_{version}")


def _bind(expr: Expr, symbolic_tuple: SymbolicTuple) -> Expr:
    """``theta(t)`` / ``e_i(t)``: substitute attribute references with the
    tuple's symbolic values."""
    return substitute_attributes(expr, dict(symbolic_tuple.values))


def apply_statement(
    db: VCDatabase,
    stmt: Statement,
    namer: VariableNamer,
) -> VCDatabase:
    """Apply one statement to a VC-database with possible-world semantics
    (Definition 6 / Theorem 3)."""
    if isinstance(stmt, InsertQuery):
        raise SymbolicExecutionError(
            "INSERT ... SELECT is not tuple independent and cannot be "
            "executed symbolically; split it away first (Section 10)"
        )
    table = db[stmt.relation]

    if isinstance(stmt, UpdateStatement):
        new_rows: list[tuple[SymbolicTuple, Expr]] = []
        conjuncts: list[Expr] = []
        for symbolic_tuple, local in table:
            theta = _bind(stmt.condition, symbolic_tuple)
            new_values: dict[str, Expr] = {}
            for attribute in table.schema:
                if attribute in stmt.set_clauses:
                    fresh = namer.fresh(attribute)
                    assigned = _bind(
                        stmt.set_clauses[attribute], symbolic_tuple
                    )
                    previous = symbolic_tuple[attribute]
                    conjuncts.append(
                        eq(fresh, If(theta, assigned, previous))
                    )
                    new_values[attribute] = fresh
                else:
                    # untouched attribute: reuse the previous variable
                    new_values[attribute] = symbolic_tuple[attribute]
            new_rows.append((SymbolicTuple(new_values), local))
        updated = VCTable(table.schema, tuple(new_rows))
        result = db.with_table(stmt.relation, updated)
        for conjunct in conjuncts:
            result = result.with_conjunct(conjunct)
        return result

    if isinstance(stmt, DeleteStatement):
        new_rows = []
        for symbolic_tuple, local in table:
            theta = _bind(stmt.condition, symbolic_tuple)
            new_local = simplify(and_(local, Not(theta)))
            new_rows.append((symbolic_tuple, new_local))
        return db.with_table(stmt.relation, VCTable(table.schema, tuple(new_rows)))

    if isinstance(stmt, InsertTuple):
        from ..relational.expressions import Const

        inserted = SymbolicTuple(
            {
                attribute: Const(value)
                for attribute, value in zip(table.schema, stmt.values)
            }
        )
        rows = table.rows + ((inserted, TRUE),)
        return db.with_table(stmt.relation, VCTable(table.schema, rows))

    raise SymbolicExecutionError(f"unsupported statement {stmt!r}")


def execute_history(
    db: VCDatabase, history: History | Iterable[Statement], prefix: str = "x"
) -> VCDatabase:
    """Execute a whole history symbolically."""
    namer = VariableNamer(prefix)
    for stmt in history:
        db = apply_statement(db, stmt, namer)
    return db


@dataclass(frozen=True)
class SingleTupleRun:
    """Result of running one history over the single-tuple instance.

    ``input_tuple`` holds the shared input variables; ``output_tuple`` and
    ``local_condition`` describe the (single) result tuple ``t_H``; the
    defining equalities are in ``global_conjuncts``.  ``steps[j]`` is the
    ``(tuple, local condition)`` state after the first ``j`` statements of
    the history (``steps[0]`` is the input) — the ``t_{i-1}`` versions that
    the dependency analysis of Section 9 evaluates statement conditions
    over.
    """

    relation: str
    schema: Schema
    input_tuple: SymbolicTuple
    output_tuple: SymbolicTuple
    local_condition: Expr
    global_conjuncts: tuple[Expr, ...]
    steps: tuple[tuple[SymbolicTuple, Expr], ...] = ()

    def output_variables(self) -> set[str]:
        names = self.output_tuple.variables()
        from ..relational.expressions import variables_of

        names |= variables_of(self.local_condition)
        return names


def prune_defining_conjuncts(
    conjuncts: Iterable[Expr], needed_variables: set[str]
) -> list[Expr]:
    """Keep only defining equalities transitively needed by a formula.

    Symbolic execution produces one conjunct ``x_new = if ... then ... else
    x_old`` per updated attribute per statement.  A slicing/dependency
    formula usually references only a few of those variables (conditions
    over never-updated attributes reference none); constraining the others
    is sound but bloats the MILP.  Starting from ``needed_variables``, we
    keep a conjunct iff it defines a needed variable, adding the variables
    it mentions to the needed set until fixpoint.
    """
    from ..relational.expressions import Cmp, variables_of

    remaining = list(conjuncts)
    kept: list[Expr] = []
    needed = set(needed_variables)
    changed = True
    while changed and remaining:
        changed = False
        still_remaining = []
        for conjunct in remaining:
            defined: str | None = None
            if isinstance(conjunct, Cmp) and conjunct.op == "=":
                left = conjunct.left
                if isinstance(left, Var):
                    defined = left.name
            if defined is not None and defined in needed:
                kept.append(conjunct)
                needed |= variables_of(conjunct)
                changed = True
            else:
                still_remaining.append(conjunct)
        remaining = still_remaining
    return kept


def run_history_single_tuple(
    history: History | Iterable[Statement],
    relation: str,
    schema: Schema,
    input_tuple: SymbolicTuple,
    prefix: str,
) -> SingleTupleRun:
    """Run a history over a single-tuple VC-instance of ``relation``.

    All runs share ``input_tuple`` (the variables of D0); the fresh
    variables introduced by updates are namespaced by ``prefix`` so that
    separate runs (H, H[M], slices) never clash — the variable renaming
    required when assembling the slicing condition (Section 8.3.2).

    Statements targeting other relations are skipped: with tuple
    independent statements a relation's evolution does not depend on other
    relations (DESIGN.md note 4).
    """
    initial = VCDatabase({relation: VCTable(schema, ((input_tuple, TRUE),))})
    namer = VariableNamer(prefix)
    db = initial
    steps: list[tuple[SymbolicTuple, Expr]] = [(input_tuple, TRUE)]
    for stmt in history:
        if stmt.relation != relation:
            if isinstance(stmt, InsertQuery):
                raise SymbolicExecutionError(
                    "history contains INSERT ... SELECT; split first"
                )
            # statements on other relations leave this tuple untouched
            steps.append(steps[-1])
            continue
        if isinstance(stmt, InsertTuple):
            raise SymbolicExecutionError(
                "history contains INSERT VALUES; split first (Section 10)"
            )
        db = apply_statement(db, stmt, namer)
        table = db[relation]
        steps.append(table.rows[0])
    table = db[relation]
    if len(table) != 1:
        raise SymbolicExecutionError(
            f"expected a single symbolic tuple, found {len(table)}"
        )
    output_tuple, local = table.rows[0]
    return SingleTupleRun(
        relation=relation,
        schema=schema,
        input_tuple=input_tuple,
        output_tuple=output_tuple,
        local_condition=local,
        global_conjuncts=db.global_conjuncts,
        steps=tuple(steps),
    )
