"""Symbolic-execution substrate: VC-tables and database compression.

Implements Sections 8.1–8.3.1 of the paper: Virtual C-tables with
possible-world semantics, the linear-size update semantics of Definition 6,
and lossy compression of databases into range constraints.
"""

from .expansion import (
    apply_statement_expansion,
    execute_history_expansion,
)
from .compress import (
    CompressionConfig,
    compress_relation,
    constraint_admits_all,
)
from .symexec import (
    SingleTupleRun,
    SymbolicExecutionError,
    VariableNamer,
    apply_statement,
    execute_history,
    run_history_single_tuple,
)
from .vctable import SymbolicTuple, VCDatabase, VCTable

__all__ = [
    "SymbolicTuple", "VCTable", "VCDatabase",
    "VariableNamer", "apply_statement", "execute_history",
    "SingleTupleRun", "run_history_single_tuple", "SymbolicExecutionError",
    "CompressionConfig", "compress_relation", "constraint_admits_all",
    "apply_statement_expansion", "execute_history_expansion",
]
