"""Database compression into range constraints (Section 8.3.1).

The input database is (lossily) compressed into a disjunction of
conjunctions of range constraints Φ_D over the single-tuple variables:
rows are partitioned into groups (by a chosen attribute, or quantile
buckets of a numeric attribute), and each group contributes one conjunct
per attribute bounding the variable by the group's min/max (numeric) or by
a small IN-set (categorical).  Every tuple of the relation satisfies Φ_D,
so the possible worlds of the compressed VC-database are a *superset* of
the database — the property Theorem 4's proof relies on.

Attributes with unordered (string) domains of high cardinality are simply
omitted from the constraint, as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..relational.expressions import (
    Expr,
    TRUE,
    and_,
    eq,
    ge,
    le,
    or_,
)
from ..relational.relation import Relation
from .vctable import SymbolicTuple

__all__ = ["CompressionConfig", "compress_relation", "constraint_admits_all"]

#: Above this many distinct strings an attribute is left unconstrained.
DEFAULT_MAX_DISTINCT = 12


@dataclass(frozen=True)
class CompressionConfig:
    """How to compress one relation.

    ``group_by``: attribute to partition on (``None`` = single group).
    ``num_groups``: for numeric group-by attributes, the number of
    quantile buckets; categorical group-by uses one group per value.
    ``max_distinct``: categorical attributes with more distinct values
    than this are omitted from the constraint.
    """

    group_by: str | None = None
    num_groups: int = 2
    max_distinct: int = DEFAULT_MAX_DISTINCT


def compress_relation(
    relation: Relation,
    symbolic_tuple: SymbolicTuple,
    config: CompressionConfig | None = None,
) -> Expr:
    """Compress ``relation`` into a constraint over ``symbolic_tuple``.

    Returns Φ_D: a disjunction with one disjunct per group.  An empty
    relation compresses to ``TRUE`` (no information, all worlds possible —
    still a safe over-approximation).
    """
    config = config or CompressionConfig()
    rows = [relation.schema.as_dict(t) for t in relation]
    if not rows:
        return TRUE

    groups = _partition(rows, config)
    disjuncts = [
        _group_constraint(group, relation, symbolic_tuple, config)
        for group in groups
        if group
    ]
    return or_(*disjuncts) if disjuncts else TRUE


def _partition(
    rows: list[dict[str, Any]], config: CompressionConfig
) -> list[list[dict[str, Any]]]:
    """Split rows into groups per the configuration."""
    if config.group_by is None:
        return [rows]
    attribute = config.group_by
    sample = rows[0].get(attribute)
    if isinstance(sample, str) or isinstance(sample, bool):
        buckets: dict[Any, list[dict[str, Any]]] = {}
        for row in rows:
            buckets.setdefault(row[attribute], []).append(row)
        return list(buckets.values())
    # numeric group-by: quantile buckets
    ordered = sorted(rows, key=lambda r: (r[attribute] is None, r[attribute]))
    n = max(1, config.num_groups)
    size = max(1, (len(ordered) + n - 1) // n)
    return [ordered[i : i + size] for i in range(0, len(ordered), size)]


def _group_constraint(
    group: list[dict[str, Any]],
    relation: Relation,
    symbolic_tuple: SymbolicTuple,
    config: CompressionConfig,
) -> Expr:
    """One conjunction of per-attribute range constraints for a group."""
    conjuncts: list[Expr] = []
    for attribute in relation.schema:
        var = symbolic_tuple[attribute]
        values = [row[attribute] for row in group if row[attribute] is not None]
        if not values:
            continue
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            low, high = min(values), max(values)
            if low == high:
                conjuncts.append(eq(var, low))
            else:
                conjuncts.append(and_(ge(var, low), le(var, high)))
        elif all(isinstance(v, str) for v in values):
            distinct = sorted(set(values))
            if len(distinct) <= config.max_distinct:
                conjuncts.append(or_(*[eq(var, v) for v in distinct]))
            # else: unordered high-cardinality attribute — omit (paper)
        # mixed-type / boolean attributes: omit, still sound
    return and_(*conjuncts) if conjuncts else TRUE


def constraint_admits_all(
    constraint: Expr, relation: Relation, symbolic_tuple: SymbolicTuple
) -> bool:
    """Check the soundness invariant: every tuple of the relation, read as
    an assignment of the symbolic variables, satisfies Φ_D.  Used by tests
    and available for debugging compressed workloads."""
    from ..relational.expressions import evaluate, Var

    for row in relation.rows_as_dicts():
        assignment = {}
        for attribute, expr in symbolic_tuple.values.items():
            if isinstance(expr, Var):
                assignment[expr.name] = row[attribute]
        if not bool(evaluate(constraint, assignment)):
            return False
    return True
