"""Virtual C-tables (VC-tables) — Section 8.1 of the paper.

A VC-table is a relation whose tuples hold *symbolic expressions* over a
set of variables; each tuple carries a *local condition* governing its
membership, and the table (database) carries a *global condition* that
every variable assignment must satisfy.  A VC-database encodes the
incomplete database ``Mod(D)``: one possible world per assignment
``lambda`` of the variables satisfying the global condition (Definition 5).

Program slicing uses single-tuple VC-databases, but the implementation is
general: tables may hold any number of symbolic tuples, which is also what
the Definition 6 update semantics (in :mod:`repro.symbolic.symexec`)
require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..relational.database import Database
from ..relational.expressions import (
    Expr,
    TRUE,
    Var,
    and_,
    evaluate,
    simplify,
    substitute_variables,
    variables_of,
)
from ..relational.relation import Relation
from ..relational.schema import Schema

__all__ = ["SymbolicTuple", "VCTable", "VCDatabase"]


@dataclass(frozen=True)
class SymbolicTuple:
    """A tuple whose attribute values are symbolic expressions."""

    values: Mapping[str, Expr]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    def __hash__(self) -> int:
        # the dict field defeats the generated hash; expressions are
        # frozen dataclasses, so content hashing is well-defined
        return hash(tuple(sorted(self.values.items(), key=lambda kv: kv[0])))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicTuple):
            return NotImplemented
        return dict(self.values) == dict(other.values)

    def __getitem__(self, attribute: str) -> Expr:
        return self.values[attribute]

    def attributes(self) -> list[str]:
        return list(self.values)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for expr in self.values.values():
            names |= variables_of(expr)
        return names

    def substitute(self, mapping: Mapping[str, Expr]) -> "SymbolicTuple":
        """Replace variables in every attribute expression."""
        return SymbolicTuple(
            {
                attr: substitute_variables(expr, mapping)
                for attr, expr in self.values.items()
            }
        )

    def instantiate(self, assignment: Mapping[str, Any]) -> dict[str, Any]:
        """Apply an assignment ``lambda`` to obtain a concrete row."""
        return {
            attr: evaluate(expr, assignment)
            for attr, expr in self.values.items()
        }

    @classmethod
    def fresh(cls, schema: Schema, prefix: str = "x") -> "SymbolicTuple":
        """A tuple of fresh variables, one per attribute (the paper's
        ``(x_A1, ..., x_An)`` single-tuple instance)."""
        return cls({attr: Var(f"{prefix}_{attr}") for attr in schema})


@dataclass(frozen=True)
class VCTable:
    """A VC-table: symbolic tuples paired with local conditions."""

    schema: Schema
    rows: tuple[tuple[SymbolicTuple, Expr], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))

    @classmethod
    def single_tuple(cls, schema: Schema, prefix: str = "x") -> "VCTable":
        """The single-tuple instance used by program slicing: one symbolic
        tuple of fresh variables with local condition ``true``."""
        return cls(schema, ((SymbolicTuple.fresh(schema, prefix), TRUE),))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[SymbolicTuple, Expr]]:
        return iter(self.rows)

    def local_condition(self, index: int) -> Expr:
        return self.rows[index][1]

    def tuple_at(self, index: int) -> SymbolicTuple:
        return self.rows[index][0]

    def variables(self) -> set[str]:
        names: set[str] = set()
        for symbolic_tuple, condition in self.rows:
            names |= symbolic_tuple.variables()
            names |= variables_of(condition)
        return names

    def instantiate(self, assignment: Mapping[str, Any]) -> Relation:
        """Apply ``lambda``: keep rows whose local condition holds."""
        rows = set()
        for symbolic_tuple, condition in self.rows:
            if bool(evaluate(condition, assignment)):
                concrete = symbolic_tuple.instantiate(assignment)
                rows.add(self.schema.from_dict(concrete))
        return Relation(self.schema, frozenset(rows))


@dataclass(frozen=True)
class VCDatabase:
    """A VC-database: named VC-tables plus a global condition.

    The global condition is stored as a tuple of conjuncts (symbolic
    execution appends one defining equality per updated attribute per
    statement; keeping them flat gives linear-size formulas, the key point
    of Definition 6).
    """

    tables: Mapping[str, VCTable]
    global_conjuncts: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tables", dict(self.tables))
        object.__setattr__(
            self, "global_conjuncts", tuple(self.global_conjuncts)
        )

    @property
    def global_condition(self) -> Expr:
        """The global condition Φ as a single conjunction."""
        return and_(*self.global_conjuncts) if self.global_conjuncts else TRUE

    def __getitem__(self, name: str) -> VCTable:
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def with_table(self, name: str, table: VCTable) -> "VCDatabase":
        updated = dict(self.tables)
        updated[name] = table
        return VCDatabase(updated, self.global_conjuncts)

    def with_conjunct(self, conjunct: Expr) -> "VCDatabase":
        return VCDatabase(self.tables, self.global_conjuncts + (conjunct,))

    def variables(self) -> set[str]:
        names: set[str] = set()
        for table in self.tables.values():
            names |= table.variables()
        for conjunct in self.global_conjuncts:
            names |= variables_of(conjunct)
        return names

    def admits(self, assignment: Mapping[str, Any]) -> bool:
        """True when ``lambda`` satisfies the global condition."""
        return bool(evaluate(self.global_condition, assignment))

    def instantiate(self, assignment: Mapping[str, Any]) -> Database | None:
        """The possible world for ``lambda``, or ``None`` when the global
        condition rejects the assignment (Definition 5)."""
        if not self.admits(assignment):
            return None
        return Database(
            {
                name: table.instantiate(assignment)
                for name, table in self.tables.items()
            }
        )

    @classmethod
    def single_tuple_database(
        cls, schemas: Mapping[str, Schema], prefix: str = "x"
    ) -> "VCDatabase":
        """A VC-database with one fresh single-tuple VC-table per relation
        (the program-slicing input ``D_0``, Section 8.3)."""
        return cls(
            {
                name: VCTable.single_tuple(schema, prefix=f"{prefix}_{name}")
                for name, schema in schemas.items()
            }
        )
