"""A small mixed-integer linear program (MILP) model.

The paper (Section 11) compiles slicing conditions into MILPs and solves
them with CPLEX.  CPLEX is not available offline, so this module defines a
minimal MILP representation — continuous and binary variables plus linear
constraints — that :mod:`repro.solver.branch_bound` solves with a
branch-and-bound search over LP relaxations computed by
``scipy.optimize.linprog``.

Only feasibility is ever needed (the slicing check asks whether the
negation of the slicing condition is satisfiable), so models carry no
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["Variable", "LinearConstraint", "MILPModel", "ModelError"]


class ModelError(Exception):
    """Raised for malformed models (unknown variables, bad senses)."""


@dataclass(frozen=True)
class Variable:
    """A model variable.

    ``kind`` is ``"continuous"`` or ``"binary"``.  Binary variables are the
    boolean guards produced by the Figure-13 compilation; continuous
    variables carry attribute values.
    """

    name: str
    kind: str = "continuous"
    lower: float = -1e7
    upper: float = 1e7

    def __post_init__(self) -> None:
        if self.kind not in ("continuous", "binary"):
            raise ModelError(f"unknown variable kind {self.kind!r}")
        if self.kind == "binary":
            object.__setattr__(self, "lower", 0.0)
            object.__setattr__(self, "upper", 1.0)
        if self.lower > self.upper:
            raise ModelError(
                f"variable {self.name}: lower {self.lower} > upper {self.upper}"
            )


@dataclass(frozen=True)
class LinearConstraint:
    """A linear constraint ``sum(coef_i * var_i) <sense> rhs``.

    ``sense`` is one of ``"<="``, ``">="``, ``"="``.
    """

    coefficients: Mapping[str, float]
    sense: str
    rhs: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "="):
            raise ModelError(f"unknown constraint sense {self.sense!r}")
        object.__setattr__(self, "coefficients", dict(self.coefficients))


class MILPModel:
    """A mutable MILP under construction.

    Variables are registered before use; adding a constraint that mentions
    an unregistered variable raises :class:`ModelError`.
    """

    def __init__(self) -> None:
        self._variables: dict[str, Variable] = {}
        self._constraints: list[LinearConstraint] = []
        self._counter = 0

    # -- variables ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        kind: str = "continuous",
        lower: float = -1e7,
        upper: float = 1e7,
    ) -> Variable:
        """Register a variable; re-registering with the same signature is a
        no-op, conflicting signatures raise."""
        var = Variable(name, kind, lower, upper)
        existing = self._variables.get(name)
        if existing is not None:
            if existing != var:
                raise ModelError(
                    f"variable {name!r} already registered with a "
                    f"different signature"
                )
            return existing
        self._variables[name] = var
        return var

    def fresh_name(self, prefix: str) -> str:
        """A model-unique variable name."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def add_binary(self, prefix: str = "b") -> Variable:
        """Register a fresh binary variable."""
        return self.add_variable(self.fresh_name(prefix), "binary")

    def add_continuous(
        self, prefix: str = "v", lower: float = -1e7, upper: float = 1e7
    ) -> Variable:
        """Register a fresh continuous variable."""
        return self.add_variable(self.fresh_name(prefix), "continuous", lower, upper)

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise ModelError(f"unknown variable {name!r}") from None

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables.values())

    @property
    def binary_names(self) -> list[str]:
        return [v.name for v in self._variables.values() if v.kind == "binary"]

    # -- constraints ---------------------------------------------------------
    def add_constraint(
        self,
        coefficients: Mapping[str, float],
        sense: str,
        rhs: float,
        label: str = "",
    ) -> LinearConstraint:
        for name in coefficients:
            if name not in self._variables:
                raise ModelError(
                    f"constraint references unknown variable {name!r}"
                )
        constraint = LinearConstraint(coefficients, sense, rhs, label)
        self._constraints.append(constraint)
        return constraint

    def fix_variable(self, name: str, value: float) -> None:
        """Pin a variable to a value with an equality constraint."""
        self.add_constraint({name: 1.0}, "=", value, label=f"fix {name}")

    @property
    def constraints(self) -> list[LinearConstraint]:
        return list(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    # -- diagnostics ---------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Model size summary (useful for the paper's cost discussion)."""
        return {
            "variables": len(self._variables),
            "binaries": len(self.binary_names),
            "constraints": len(self._constraints),
        }

    def check_assignment(
        self, assignment: Mapping[str, float], tolerance: float = 1e-6
    ) -> bool:
        """Verify that an assignment satisfies every constraint and bound."""
        for var in self._variables.values():
            value = assignment.get(var.name)
            if value is None:
                return False
            if not (var.lower - tolerance <= value <= var.upper + tolerance):
                return False
            if var.kind == "binary" and abs(value - round(value)) > tolerance:
                return False
        for constraint in self._constraints:
            total = sum(
                coef * assignment[name]
                for name, coef in constraint.coefficients.items()
            )
            if constraint.sense == "<=" and total > constraint.rhs + tolerance:
                return False
            if constraint.sense == ">=" and total < constraint.rhs - tolerance:
                return False
            if constraint.sense == "=" and abs(total - constraint.rhs) > tolerance:
                return False
        return True
