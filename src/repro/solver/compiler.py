"""Compile condition formulas into MILPs (Figure 13 of the paper).

The compilation maps every numeric sub-expression to an affine form (or a
fresh continuous variable constrained with big-M rows, for conditionals)
and every boolean sub-expression to a binary variable linked to its
operands with the linearization rules of Figure 13:

* ``e1 < e2``  →  ``v1 - v2 + b*M >= 0`` and ``v2 - v1 + (1-b)*M >= eps``
* ``e1 and e2`` → ``b1 + b2 - 2b - 1 <= 0`` and ``b1 + b2 - 2b >= 0``
* ``e1 or e2``  → ``b1 + b2 - 2b <= 0`` and ``b1 + b2 - b >= 0``
* ``not e``     → ``b + b1 = 1``
* ``if c then e1 else e2`` → big-M selection of the branch value
* equality is conjunction of ``<=`` and ``>=``; ``!=`` is its negation.

Strings are handled by a categorical encoding: every distinct string
constant in the formula receives an integer code, and variables compared
against strings range over the reals (a safe over-approximation of the set
of possible worlds — see DESIGN.md note 3).

Anything non-linear (variable × variable, division by a variable, NULL
tests over symbolic values) raises :class:`UnsupportedExpression`; callers
treat that check as inconclusive, which is always sound for slicing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    Var,
    walk,
)
from .milp import MILPModel, Variable

__all__ = [
    "UnsupportedExpression",
    "AffineForm",
    "FormulaCompiler",
    "StringEncoder",
    "compile_formula",
]

#: Default big-M constant; must dominate every attribute-value difference.
#: Kept moderate so LP feasibility tolerances (absolute, ~1e-9 after our
#: tightened HiGHS options) stay far below the strictness margin.
DEFAULT_BIG_M = 1e6
#: Strictness margin for < and > (values in workloads are integral or
#: low-precision decimals, so 1e-3 separates distinct values safely).
DEFAULT_EPSILON = 1e-3


class UnsupportedExpression(Exception):
    """The expression cannot be encoded as a linear program."""


class StringEncoder:
    """Bijective encoding of string constants to integer codes.

    Codes start at 1 and are spaced by 1; variables over strings are
    continuous, so only equality/inequality against encoded constants is
    meaningful — which matches how the workloads use categorical columns.
    """

    def __init__(self) -> None:
        self._codes: dict[str, int] = {}

    def encode(self, value: str) -> int:
        if value not in self._codes:
            self._codes[value] = len(self._codes) + 1
        return self._codes[value]

    def decode(self, code: int) -> str | None:
        for value, existing in self._codes.items():
            if existing == code:
                return value
        return None

    def known_strings(self) -> list[str]:
        return sorted(self._codes, key=self._codes.get)  # type: ignore[arg-type]


@dataclass
class AffineForm:
    """An affine numeric expression ``sum(coef_i * var_i) + constant``."""

    coefficients: dict[str, float] = field(default_factory=dict)
    constant: float = 0.0

    @classmethod
    def const(cls, value: float) -> "AffineForm":
        return cls({}, float(value))

    @classmethod
    def variable(cls, name: str) -> "AffineForm":
        return cls({name: 1.0}, 0.0)

    def is_constant(self) -> bool:
        return not self.coefficients

    def scaled(self, factor: float) -> "AffineForm":
        return AffineForm(
            {n: c * factor for n, c in self.coefficients.items()},
            self.constant * factor,
        )

    def plus(self, other: "AffineForm") -> "AffineForm":
        coefficients = dict(self.coefficients)
        for name, coef in other.coefficients.items():
            coefficients[name] = coefficients.get(name, 0.0) + coef
        return AffineForm(coefficients, self.constant + other.constant)

    def minus(self, other: "AffineForm") -> "AffineForm":
        return self.plus(other.scaled(-1.0))


class FormulaCompiler:
    """Compiles one formula (plus assertions) into a single MILP.

    A compiler instance accumulates state: a shared string encoder, the
    model, and a cache so common sub-expressions compile once.  Typical use::

        compiler = FormulaCompiler()
        compiler.assert_condition(formula)      # require formula == true
        result = solve(compiler.model)          # branch & bound
    """

    def __init__(
        self,
        big_m: float = DEFAULT_BIG_M,
        epsilon: float = DEFAULT_EPSILON,
        encoder: StringEncoder | None = None,
    ) -> None:
        self.model = MILPModel()
        self.big_m = big_m
        self.epsilon = epsilon
        self.encoder = encoder or StringEncoder()
        self._bool_cache: dict[Expr, str] = {}
        self._value_bound = big_m / 4.0

    # -- public API --------------------------------------------------------
    def assert_condition(self, condition: Expr) -> None:
        """Add the requirement that ``condition`` evaluates to true."""
        b = self.compile_boolean(condition)
        self.model.fix_variable(b, 1.0)

    def assert_negation(self, condition: Expr) -> None:
        """Add the requirement that ``condition`` evaluates to false."""
        b = self.compile_boolean(condition)
        self.model.fix_variable(b, 0.0)

    def decode_assignment(
        self, assignment: Mapping[str, float]
    ) -> dict[str, Any]:
        """Map solver values back to attribute values (strings decoded when
        a value is within rounding distance of a known code)."""
        decoded: dict[str, Any] = {}
        for name, value in assignment.items():
            string = self.encoder.decode(round(value)) if abs(
                value - round(value)
            ) < 1e-6 else None
            decoded[name] = string if string is not None else value
        return decoded

    # -- numeric compilation ---------------------------------------------
    def compile_numeric(self, expr: Expr) -> AffineForm:
        """Compile a numeric expression to an affine form, introducing
        auxiliary variables for conditionals."""
        if isinstance(expr, Const):
            return AffineForm.const(self._encode_constant(expr.value))
        if isinstance(expr, (Attr, Var)):
            name = self._value_var(expr)
            return AffineForm.variable(name)
        if isinstance(expr, Arith):
            left = self.compile_numeric(expr.left)
            right = self.compile_numeric(expr.right)
            if expr.op == "+":
                return left.plus(right)
            if expr.op == "-":
                return left.minus(right)
            if expr.op == "*":
                if right.is_constant():
                    return left.scaled(right.constant)
                if left.is_constant():
                    return right.scaled(left.constant)
                raise UnsupportedExpression(
                    "product of two non-constant expressions is not linear"
                )
            if expr.op == "/":
                if right.is_constant():
                    if right.constant == 0:
                        raise UnsupportedExpression("division by zero")
                    return left.scaled(1.0 / right.constant)
                raise UnsupportedExpression(
                    "division by a non-constant expression is not linear"
                )
        if isinstance(expr, If):
            return self._compile_conditional_value(expr)
        raise UnsupportedExpression(f"cannot compile {expr!r} as a value")

    def _encode_constant(self, value: Any) -> float:
        if value is None:
            raise UnsupportedExpression("NULL constants are not encodable")
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, str):
            return float(self.encoder.encode(value))
        return float(value)

    def _value_var(self, expr: Attr | Var) -> str:
        prefix = "attr" if isinstance(expr, Attr) else "sym"
        name = f"{prefix}::{expr.name}"
        self.model.add_variable(
            name, "continuous", -self._value_bound, self._value_bound
        )
        return name

    def _compile_conditional_value(self, expr: If) -> AffineForm:
        """``if c then e1 else e2`` via big-M branch selection.

        Introduces ``v`` with ``v = e1`` when ``b_c = 1`` and ``v = e2``
        when ``b_c = 0`` (four big-M rows, the compact equivalent of the
        eight rows shown in Figure 13).
        """
        b = self.compile_boolean(expr.cond)
        then_form = self.compile_numeric(expr.then)
        else_form = self.compile_numeric(expr.orelse)
        v = self.model.add_continuous(
            "vif", -self._value_bound, self._value_bound
        )
        big_m = self.big_m
        # v - then <= M(1-b)        v - then >= -M(1-b)
        self._add_affine_constraint(
            AffineForm.variable(v.name).minus(then_form),
            {b: big_m},
            "<=",
            big_m,
        )
        self._add_affine_constraint(
            AffineForm.variable(v.name).minus(then_form),
            {b: -big_m},
            ">=",
            -big_m,
        )
        # v - else <= M*b           v - else >= -M*b
        self._add_affine_constraint(
            AffineForm.variable(v.name).minus(else_form),
            {b: -big_m},
            "<=",
            0.0,
        )
        self._add_affine_constraint(
            AffineForm.variable(v.name).minus(else_form),
            {b: big_m},
            ">=",
            0.0,
        )
        return AffineForm.variable(v.name)

    def _add_affine_constraint(
        self,
        form: AffineForm,
        extra: Mapping[str, float],
        sense: str,
        rhs: float,
    ) -> None:
        """Add ``form + extra <sense> rhs`` moving form.constant to the RHS."""
        coefficients = dict(form.coefficients)
        for name, coef in extra.items():
            coefficients[name] = coefficients.get(name, 0.0) + coef
        self.model.add_constraint(coefficients, sense, rhs - form.constant)

    # -- boolean compilation ---------------------------------------------
    def compile_boolean(self, expr: Expr) -> str:
        """Compile a condition to a binary variable name whose value in any
        model solution equals the condition's truth value."""
        cached = self._bool_cache.get(expr)
        if cached is not None:
            return cached
        name = self._compile_boolean_uncached(expr)
        self._bool_cache[expr] = name
        return name

    def _compile_boolean_uncached(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            if not isinstance(expr.value, bool):
                raise UnsupportedExpression(
                    f"constant {expr.value!r} used as a condition"
                )
            b = self.model.add_binary("bconst")
            self.model.fix_variable(b.name, 1.0 if expr.value else 0.0)
            return b.name
        if isinstance(expr, Cmp):
            return self._compile_comparison(expr)
        if isinstance(expr, Logic):
            b1 = self.compile_boolean(expr.left)
            b2 = self.compile_boolean(expr.right)
            b = self.model.add_binary("blogic")
            if expr.op == "and":
                # b1 + b2 - 2b - 1 <= 0   and   b1 + b2 - 2b >= 0
                self.model.add_constraint(
                    {b1: 1, b2: 1, b.name: -2}, "<=", 1.0
                )
                self.model.add_constraint(
                    {b1: 1, b2: 1, b.name: -2}, ">=", 0.0
                )
            else:  # or
                # b1 + b2 - 2b <= 0   and   b1 + b2 - b >= 0
                self.model.add_constraint(
                    {b1: 1, b2: 1, b.name: -2}, "<=", 0.0
                )
                self.model.add_constraint(
                    {b1: 1, b2: 1, b.name: -1}, ">=", 0.0
                )
            return b.name
        if isinstance(expr, Not):
            b1 = self.compile_boolean(expr.operand)
            b = self.model.add_binary("bnot")
            self.model.add_constraint({b.name: 1, b1: 1}, "=", 1.0)
            return b.name
        if isinstance(expr, If):
            # boolean-valued conditional: (c and then) or (not c and else)
            rewritten = Logic(
                "or",
                Logic("and", expr.cond, expr.then),
                Logic("and", Not(expr.cond), expr.orelse),
            )
            return self.compile_boolean(rewritten)
        if isinstance(expr, IsNull):
            raise UnsupportedExpression(
                "IS NULL over symbolic values is not supported"
            )
        if isinstance(expr, (Attr, Var)):
            raise UnsupportedExpression(
                f"bare reference {expr!r} used as a condition"
            )
        raise UnsupportedExpression(f"cannot compile condition {expr!r}")

    def _compile_comparison(self, expr: Cmp) -> str:
        left = self.compile_numeric(expr.left)
        right = self.compile_numeric(expr.right)
        if expr.op == "<":
            return self._strict_less(left, right)
        if expr.op == ">":
            return self._strict_less(right, left)
        if expr.op == "<=":
            return self._less_equal(left, right)
        if expr.op == ">=":
            return self._less_equal(right, left)
        if expr.op == "=":
            b_le = self._less_equal(left, right)
            b_ge = self._less_equal(right, left)
            b = self.model.add_binary("beq")
            self.model.add_constraint({b_le: 1, b_ge: 1, b.name: -2}, "<=", 1.0)
            self.model.add_constraint({b_le: 1, b_ge: 1, b.name: -2}, ">=", 0.0)
            return b.name
        # != is the negation of =
        b_eq = self.compile_boolean(Cmp("=", expr.left, expr.right))
        b = self.model.add_binary("bneq")
        self.model.add_constraint({b.name: 1, b_eq: 1}, "=", 1.0)
        return b.name

    def _strict_less(self, left: AffineForm, right: AffineForm) -> str:
        """Figure 13 rule for ``e1 < e2``."""
        b = self.model.add_binary("blt")
        diff = left.minus(right)  # v1 - v2
        # v1 - v2 + b*M >= 0  (b=0 -> v1 >= v2)
        self._add_affine_constraint(diff, {b.name: self.big_m}, ">=", 0.0)
        # v2 - v1 + (1-b)*M >= eps  (b=1 -> v2 - v1 >= eps)
        self._add_affine_constraint(
            diff.scaled(-1.0), {b.name: -self.big_m}, ">=", self.epsilon - self.big_m
        )
        return b.name

    def _less_equal(self, left: AffineForm, right: AffineForm) -> str:
        """Figure 13 rule for ``e1 <= e2``."""
        b = self.model.add_binary("ble")
        diff = left.minus(right)
        # v1 - v2 + b*M >= eps  (b=0 -> v1 - v2 >= eps, i.e. v1 > v2)
        self._add_affine_constraint(
            diff, {b.name: self.big_m}, ">=", self.epsilon
        )
        # v2 - v1 + (1-b)*M >= 0  (b=1 -> v2 >= v1)
        self._add_affine_constraint(
            diff.scaled(-1.0), {b.name: -self.big_m}, ">=", -self.big_m
        )
        return b.name


def compile_formula(
    formula: Expr,
    big_m: float = DEFAULT_BIG_M,
    epsilon: float = DEFAULT_EPSILON,
) -> FormulaCompiler:
    """Compile a single formula, asserting it must hold."""
    compiler = FormulaCompiler(big_m=big_m, epsilon=epsilon)
    compiler.assert_condition(formula)
    return compiler


def formula_uses_strings(formula: Expr) -> bool:
    """True when any constant in the formula is a string (drives the
    categorical-encoding path in diagnostics)."""
    return any(
        isinstance(node, Const) and isinstance(node.value, str)
        for node in walk(formula)
    )
