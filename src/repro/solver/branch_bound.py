"""Branch-and-bound MILP feasibility solver over scipy LP relaxations.

This replaces CPLEX (which the paper uses) with the textbook algorithm:
solve the LP relaxation with ``scipy.optimize.linprog`` (HiGHS); if it is
infeasible the node is pruned; if all binary variables are integral the
model is feasible; otherwise branch on the most fractional binary.

Only feasibility is needed, so the LP objective is a zero vector.  A node
limit guards against pathological formulas; hitting it returns ``UNKNOWN``
which callers must treat conservatively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.optimize import linprog

from .milp import MILPModel

__all__ = [
    "Feasibility",
    "SolveResult",
    "solve",
    "solve_branch_bound",
    "is_feasible",
]


class Feasibility(enum.Enum):
    """Outcome of a feasibility check."""

    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SolveResult:
    """Result of :func:`solve`.

    ``assignment`` is a witness (variable name -> value) when feasible.
    ``nodes`` counts branch-and-bound nodes explored.
    """

    status: Feasibility
    assignment: dict[str, float] | None = None
    nodes: int = 0


_INTEGRALITY_TOL = 1e-5

#: Tightened HiGHS tolerances: big-M rows have coefficients around 1e6, so
#: the default 1e-7 feasibility tolerance would allow absolute violations
#: of ~0.1 after scaling; 1e-9 keeps them far below the compiler's epsilon.
_LINPROG_OPTIONS = {
    "primal_feasibility_tolerance": 1e-9,
    "dual_feasibility_tolerance": 1e-9,
}


def _build_lp_arrays(model: MILPModel):
    """Convert the model into scipy linprog arrays."""
    variables = model.variables
    index = {v.name: i for i, v in enumerate(variables)}
    n = len(variables)

    a_ub: list[np.ndarray] = []
    b_ub: list[float] = []
    a_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for constraint in model.constraints:
        row = np.zeros(n)
        for name, coef in constraint.coefficients.items():
            row[index[name]] += coef
        if constraint.sense == "<=":
            a_ub.append(row)
            b_ub.append(constraint.rhs)
        elif constraint.sense == ">=":
            a_ub.append(-row)
            b_ub.append(-constraint.rhs)
        else:
            a_eq.append(row)
            b_eq.append(constraint.rhs)

    bounds = [(v.lower, v.upper) for v in variables]
    return variables, index, a_ub, b_ub, a_eq, b_eq, bounds


def solve(model: MILPModel, node_limit: int = 2000) -> SolveResult:
    """Feasibility check: HiGHS native MIP first, own branch and bound as
    fallback.

    scipy's ``linprog`` exposes the HiGHS MIP solver through the
    ``integrality`` parameter; it is the production path (CPLEX stand-in).
    When its answer fails exact verification (big-M scaling slop) or HiGHS
    errors out, we fall back to :func:`solve_branch_bound`, the from-
    scratch implementation that is also exercised directly by the tests.
    """
    if not model.variables:
        return SolveResult(Feasibility.FEASIBLE, {}, 0)

    result = _solve_highs_mip(model)
    if result is not None:
        return result
    return solve_branch_bound(model, node_limit=node_limit)


#: Maximum no-good cuts before giving up on the HiGHS path.  Kept small:
#: repeated spurious incumbents mean the formula lives in the epsilon
#: regime where UNKNOWN (treated conservatively by all callers) is the
#: honest answer.
_MAX_NO_GOOD_CUTS = 8


def _solve_highs_mip(model: MILPModel) -> SolveResult | None:
    """HiGHS MIP feasibility with no-good-cut verification; ``None`` means
    "fall back to our own branch and bound".

    HiGHS's MIP integrality tolerance (~1e-6) lets a binary sit at 1e-9,
    which against a big-M coefficient of 1e6 manufactures exactly the
    epsilon of slack our strict-inequality rows rely on.  Every claimed-
    feasible answer is therefore *re-verified* by pinning the binaries to
    their rounded values and solving the remaining LP at tight tolerance;
    a spurious boolean assignment is excluded with a no-good cut
    (``sum over ones of (1-b) + sum over zeros of b >= 1``) and the MIP is
    re-solved.  INFEASIBLE answers are exact and returned directly.
    """
    variables, index, a_ub, b_ub, a_eq, b_eq, bounds = _build_lp_arrays(model)
    binary_indices = [i for i, v in enumerate(variables) if v.kind == "binary"]
    integrality = np.array(
        [1 if v.kind == "binary" else 0 for v in variables]
    )
    c = np.zeros(len(variables))
    a_ub_rows = list(a_ub)
    b_ub_vals = list(b_ub)
    a_eq_m = np.array(a_eq) if a_eq else None
    b_eq_v = np.array(b_eq) if b_eq else None

    nodes = 0
    for _ in range(_MAX_NO_GOOD_CUTS):
        nodes += 1
        try:
            result = linprog(
                c,
                A_ub=np.array(a_ub_rows) if a_ub_rows else None,
                b_ub=np.array(b_ub_vals) if b_ub_vals else None,
                A_eq=a_eq_m,
                b_eq=b_eq_v,
                bounds=bounds,
                method="highs",
                integrality=integrality,
                options=_LINPROG_OPTIONS,
            )
        except (ValueError, TypeError):  # pragma: no cover - scipy quirks
            return None
        if result.status == 2:
            return SolveResult(Feasibility.INFEASIBLE, None, nodes)
        if result.status != 0 or result.x is None:
            return None

        rounded = {i: float(round(result.x[i])) for i in binary_indices}
        # Re-verify: pin binaries, solve the continuous rest exactly.
        pinned_bounds = list(bounds)
        for i, value in rounded.items():
            pinned_bounds[i] = (value, value)
        pinned = linprog(
            c,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=a_eq_m,
            b_eq=b_eq_v,
            bounds=pinned_bounds,
            method="highs",
            options=_LINPROG_OPTIONS,
        )
        if pinned.status == 0 and pinned.x is not None:
            assignment = {
                v.name: float(pinned.x[i]) for i, v in enumerate(variables)
            }
            for i, value in rounded.items():
                assignment[variables[i].name] = value
            if model.check_assignment(assignment, tolerance=1e-4):
                return SolveResult(Feasibility.FEASIBLE, assignment, nodes)
        # Spurious boolean assignment: exclude it and try again.
        cut = np.zeros(len(variables))
        offset = 0.0
        for i, value in rounded.items():
            if value >= 0.5:
                cut[i] = 1.0  # sum of the one-bits must drop below count
                offset += 1.0
            else:
                cut[i] = -1.0
        # sum_{b=1}(b) - sum_{b=0}(b) <= (#ones - 1)
        a_ub_rows.append(cut)
        b_ub_vals.append(offset - 1.0)
    return None


def solve_branch_bound(model: MILPModel, node_limit: int = 2000) -> SolveResult:
    """Feasibility check via our own branch and bound over LP relaxations.

    Branching fixes binary variables by tightening their bounds, so every
    node is one LP solve with modified bounds — no constraint copying.
    """
    if not model.variables:
        return SolveResult(Feasibility.FEASIBLE, {}, 0)

    variables, index, a_ub, b_ub, a_eq, b_eq, bounds = _build_lp_arrays(model)
    binary_indices = [
        i for i, v in enumerate(variables) if v.kind == "binary"
    ]
    c = np.zeros(len(variables))
    a_ub_m = np.array(a_ub) if a_ub else None
    b_ub_v = np.array(b_ub) if b_ub else None
    a_eq_m = np.array(a_eq) if a_eq else None
    b_eq_v = np.array(b_eq) if b_eq else None

    nodes_explored = 0
    # Each stack entry is a dict of {binary index: fixed value}.
    stack: list[dict[int, float]] = [{}]
    hit_limit = False

    while stack:
        if nodes_explored >= node_limit:
            hit_limit = True
            break
        fixings = stack.pop()
        nodes_explored += 1

        node_bounds = list(bounds)
        for i, value in fixings.items():
            node_bounds[i] = (value, value)

        result = linprog(
            c,
            A_ub=a_ub_m,
            b_ub=b_ub_v,
            A_eq=a_eq_m,
            b_eq=b_eq_v,
            bounds=node_bounds,
            method="highs",
            options=_LINPROG_OPTIONS,
        )
        if not result.success:
            continue  # infeasible or numerically hopeless node: prune

        x = result.x
        fractional = [
            i
            for i in binary_indices
            if abs(x[i] - round(x[i])) > _INTEGRALITY_TOL
        ]
        if not fractional:
            assignment = {v.name: float(x[i]) for i, v in enumerate(variables)}
            for i in binary_indices:
                assignment[variables[i].name] = float(round(x[i]))
            if model.check_assignment(assignment, tolerance=1e-4):
                return SolveResult(
                    Feasibility.FEASIBLE, assignment, nodes_explored
                )
            # The LP point survived scaling slop but violates the exact
            # model.  Re-solve with every binary pinned to its rounded
            # value: presolve then substitutes the big-M terms away and the
            # verdict for this boolean assignment is exact.
            pinned_bounds = list(node_bounds)
            for i in binary_indices:
                value = float(round(x[i]))
                pinned_bounds[i] = (value, value)
            pinned = linprog(
                c,
                A_ub=a_ub_m,
                b_ub=b_ub_v,
                A_eq=a_eq_m,
                b_eq=b_eq_v,
                bounds=pinned_bounds,
                method="highs",
                options=_LINPROG_OPTIONS,
            )
            nodes_explored += 1
            if pinned.success:
                assignment = {
                    v.name: float(pinned.x[i])
                    for i, v in enumerate(variables)
                }
                for i in binary_indices:
                    assignment[variables[i].name] = float(round(pinned.x[i]))
                if model.check_assignment(assignment, tolerance=1e-4):
                    return SolveResult(
                        Feasibility.FEASIBLE, assignment, nodes_explored
                    )
            # This boolean assignment is infeasible; force the search to
            # consider other assignments by branching on any unfixed binary.
            unfixed = [i for i in binary_indices if i not in fixings]
            if unfixed:
                branch_var = unfixed[0]
                for value in (1.0, 0.0):
                    if value == round(x[branch_var]) and len(unfixed) == 1:
                        continue  # that exact assignment was just refuted
                    child = dict(fixings)
                    child[branch_var] = value
                    stack.append(child)
            continue

        # Branch on the most fractional binary variable.
        branch_on = max(fractional, key=lambda i: min(x[i], 1 - x[i]))
        for value in (1.0, 0.0):
            child = dict(fixings)
            child[branch_on] = value
            stack.append(child)

    if hit_limit:
        return SolveResult(Feasibility.UNKNOWN, None, nodes_explored)
    return SolveResult(Feasibility.INFEASIBLE, None, nodes_explored)


def is_feasible(model: MILPModel, node_limit: int = 2000) -> Feasibility:
    """Convenience wrapper returning only the status."""
    return solve(model, node_limit=node_limit).status
