"""Interval-propagation presolver.

The dependency checks of Section 9 mostly produce conjunctions of range
comparisons over a handful of variables (window-overlap questions).  A
full MILP solve is overkill for those; this presolver decides many of them
by interval reasoning:

* normalize the formula to DNF (with a size cutoff — blowup aborts),
* for each disjunct, intersect per-variable intervals implied by its
  atomic comparisons,
* a disjunct with a non-empty box *and no residual non-interval atoms* is
  a witness (SAT); if every disjunct's box is empty the formula is UNSAT;
  anything else is inconclusive and falls through to the MILP.

Only comparisons of the shape ``var op constant`` / ``constant op var``
(over numbers or strings — strings only for ``=``/``!=``) participate;
any other atom makes its disjunct inconclusive-for-SAT but can still be
proven UNSAT by the box alone.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..relational.expressions import (
    Attr,
    Cmp,
    Const,
    Expr,
    Logic,
    Not,
    Var,
    simplify,
)

__all__ = ["IntervalOutcome", "interval_presolve"]

#: Abort DNF expansion beyond this many disjuncts.
_DNF_LIMIT = 256


class IntervalOutcome(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class _Box:
    """Per-variable closed/open interval intersection plus string facts."""

    lower: dict[str, float]
    lower_strict: dict[str, bool]
    upper: dict[str, float]
    upper_strict: dict[str, bool]
    string_eq: dict[str, str]
    string_neq: dict[str, set[str]]
    numeric_neq: dict[str, set[float]]
    impossible: bool = False
    residual: bool = False  # saw an atom we could not interpret

    @classmethod
    def empty(cls) -> "_Box":
        return cls({}, {}, {}, {}, {}, {}, {})

    def finalize(self) -> None:
        """Checks that need the complete fact set: point intervals hitting
        an exclusion, and variables with both string and numeric facts."""
        for name, excluded in self.numeric_neq.items():
            low = self.lower.get(name, -math.inf)
            high = self.upper.get(name, math.inf)
            if low == high and low in excluded:
                self.impossible = True
        numeric_names = set(self.lower) | set(self.upper) | set(
            self.numeric_neq
        )
        string_names = set(self.string_eq) | set(self.string_neq)
        if numeric_names & string_names:
            self.residual = True  # mixed-type facts: let the MILP decide

    def add_lower(self, name: str, bound: float, strict: bool) -> None:
        current = self.lower.get(name, -math.inf)
        if bound > current or (
            bound == current and strict and not self.lower_strict.get(name, False)
        ):
            self.lower[name] = bound
            self.lower_strict[name] = strict
        self._check(name)

    def add_upper(self, name: str, bound: float, strict: bool) -> None:
        current = self.upper.get(name, math.inf)
        if bound < current or (
            bound == current and strict and not self.upper_strict.get(name, False)
        ):
            self.upper[name] = bound
            self.upper_strict[name] = strict
        self._check(name)

    def add_string_eq(self, name: str, value: str) -> None:
        existing = self.string_eq.get(name)
        if existing is not None and existing != value:
            self.impossible = True
            return
        if value in self.string_neq.get(name, set()):
            self.impossible = True
            return
        self.string_eq[name] = value

    def add_string_neq(self, name: str, value: str) -> None:
        if self.string_eq.get(name) == value:
            self.impossible = True
            return
        self.string_neq.setdefault(name, set()).add(value)

    def _check(self, name: str) -> None:
        low = self.lower.get(name, -math.inf)
        high = self.upper.get(name, math.inf)
        if low > high:
            self.impossible = True
        elif low == high and (
            self.lower_strict.get(name, False)
            or self.upper_strict.get(name, False)
        ):
            self.impossible = True


def _to_nnf(expr: Expr, negated: bool = False) -> Expr:
    """Push negations to the atoms (negation normal form)."""
    if isinstance(expr, Not):
        return _to_nnf(expr.operand, not negated)
    if isinstance(expr, Logic):
        op = expr.op
        if negated:
            op = "or" if op == "and" else "and"
        return Logic(op, _to_nnf(expr.left, negated), _to_nnf(expr.right, negated))
    if isinstance(expr, Cmp) and negated:
        flipped = {
            "=": "!=", "!=": "=",
            "<": ">=", ">=": "<",
            ">": "<=", "<=": ">",
        }[expr.op]
        return Cmp(flipped, expr.left, expr.right)
    if isinstance(expr, Const) and negated:
        return Const(not bool(expr.value))
    if negated:
        return Not(expr)
    return expr


def _dnf(expr: Expr) -> list[list[Expr]] | None:
    """Expand NNF into a list of conjunctions of atoms; None on blowup."""
    if isinstance(expr, Logic):
        if expr.op == "or":
            left = _dnf(expr.left)
            right = _dnf(expr.right)
            if left is None or right is None:
                return None
            combined = left + right
            return combined if len(combined) <= _DNF_LIMIT else None
        left = _dnf(expr.left)
        right = _dnf(expr.right)
        if left is None or right is None:
            return None
        product = [a + b for a in left for b in right]
        return product if len(product) <= _DNF_LIMIT else None
    return [[expr]]


def _reference_name(expr: Expr) -> str | None:
    if isinstance(expr, (Attr, Var)):
        return expr.name
    return None


def _apply_atom(box: _Box, atom: Expr) -> None:
    """Fold one atom into the box; unknown shapes set ``residual``."""
    if isinstance(atom, Const):
        if atom.value is True:
            return
        if atom.value is False:
            box.impossible = True
            return
        box.residual = True
        return
    if not isinstance(atom, Cmp):
        box.residual = True
        return
    left_name = _reference_name(atom.left)
    right_name = _reference_name(atom.right)
    left_const = atom.left.value if isinstance(atom.left, Const) else None
    right_const = atom.right.value if isinstance(atom.right, Const) else None

    if left_name is not None and isinstance(atom.right, Const):
        name, value, op = left_name, right_const, atom.op
    elif right_name is not None and isinstance(atom.left, Const):
        mirrored = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
                    "=": "=", "!=": "!="}[atom.op]
        name, value, op = right_name, left_const, mirrored
    else:
        box.residual = True
        return

    if isinstance(value, str):
        if op == "=":
            box.add_string_eq(name, value)
        elif op == "!=":
            box.add_string_neq(name, value)
        else:
            box.residual = True
        return
    if value is None or isinstance(value, bool):
        box.residual = True
        return

    value = float(value)
    if op == "=":
        box.add_lower(name, value, strict=False)
        box.add_upper(name, value, strict=False)
    elif op == "!=":
        # an exclusion from a continuum only matters for point intervals;
        # recorded and re-checked in finalize()
        box.numeric_neq.setdefault(name, set()).add(value)
    elif op == "<":
        box.add_upper(name, value, strict=True)
    elif op == "<=":
        box.add_upper(name, value, strict=False)
    elif op == ">":
        box.add_lower(name, value, strict=True)
    else:  # >=
        box.add_lower(name, value, strict=False)


def interval_presolve(formula: Expr) -> IntervalOutcome:
    """Try to decide satisfiability by interval reasoning alone."""
    normalized = _to_nnf(simplify(formula))
    disjuncts = _dnf(normalized)
    if disjuncts is None:
        return IntervalOutcome.UNKNOWN

    any_unknown = False
    for atoms in disjuncts:
        box = _Box.empty()
        for atom in atoms:
            _apply_atom(box, atom)
            if box.impossible:
                break
        if not box.impossible:
            box.finalize()
        if box.impossible:
            continue
        if box.residual:
            any_unknown = True
            continue
        return IntervalOutcome.SAT
    return IntervalOutcome.UNKNOWN if any_unknown else IntervalOutcome.UNSAT
