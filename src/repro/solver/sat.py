"""High-level satisfiability API used by program slicing.

Program slicing needs one primitive (Section 8.3.2): *is this condition
formula satisfiable?*  If the negated slicing condition is unsatisfiable
the candidate is a valid slice.  This module wraps compilation + branch and
bound and maps every failure mode (unsupported expression, node-limit hit)
to :data:`Feasibility.UNKNOWN`, which callers treat as "cannot prove",
keeping the overall algorithm sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..relational.expressions import Expr, FALSE, TRUE, simplify
from .branch_bound import Feasibility, SolveResult, solve
from .compiler import (
    DEFAULT_BIG_M,
    DEFAULT_EPSILON,
    FormulaCompiler,
    UnsupportedExpression,
)

__all__ = ["SatResult", "check_satisfiable", "SolverConfig"]


@dataclass(frozen=True)
class SolverConfig:
    """Tunables for the satisfiability pipeline.

    ``use_interval_presolve`` short-circuits formulas decidable by pure
    interval reasoning (most of the Section-9 dependency checks) before
    paying for MILP compilation; disable it to benchmark the raw MILP
    path.
    """

    big_m: float = DEFAULT_BIG_M
    epsilon: float = DEFAULT_EPSILON
    node_limit: int = 400
    use_interval_presolve: bool = True


@dataclass(frozen=True)
class SatResult:
    """Outcome of a satisfiability check with an optional witness.

    ``witness`` maps variable names to (decoded) values when satisfiable.
    ``model_stats`` carries the compiled model size for benchmarking (the
    paper reports MILP cost separately as "PS" time).
    """

    status: Feasibility
    witness: dict[str, Any] | None = None
    model_stats: dict[str, int] | None = None
    nodes: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status is Feasibility.FEASIBLE

    @property
    def is_unsat(self) -> bool:
        return self.status is Feasibility.INFEASIBLE


def check_satisfiable(
    formula: Expr, config: SolverConfig | None = None
) -> SatResult:
    """Check whether ``formula`` has a satisfying assignment.

    The formula is simplified first; the trivial cases short-circuit the
    solver entirely (histories frequently produce constant-foldable slicing
    conditions).
    """
    config = config or SolverConfig()
    simplified = simplify(formula)
    if simplified == TRUE:
        return SatResult(Feasibility.FEASIBLE, {})
    if simplified == FALSE:
        return SatResult(Feasibility.INFEASIBLE)

    if config.use_interval_presolve:
        from .intervals import IntervalOutcome, interval_presolve

        outcome = interval_presolve(simplified)
        if outcome is IntervalOutcome.SAT:
            return SatResult(Feasibility.FEASIBLE)
        if outcome is IntervalOutcome.UNSAT:
            return SatResult(Feasibility.INFEASIBLE)

    compiler = FormulaCompiler(big_m=config.big_m, epsilon=config.epsilon)
    try:
        compiler.assert_condition(simplified)
    except UnsupportedExpression:
        return SatResult(Feasibility.UNKNOWN)

    result: SolveResult = solve(compiler.model, node_limit=config.node_limit)
    witness = None
    if result.status is Feasibility.FEASIBLE and result.assignment is not None:
        witness = _decode_witness(compiler, result.assignment)
    return SatResult(
        result.status,
        witness,
        compiler.model.stats(),
        result.nodes,
    )


def _decode_witness(
    compiler: FormulaCompiler, assignment: dict[str, float]
) -> dict[str, Any]:
    """Strip the compiler's variable-name prefixes and decode strings."""
    witness: dict[str, Any] = {}
    for name, value in assignment.items():
        if name.startswith("attr::") or name.startswith("sym::"):
            plain = name.split("::", 1)[1]
            decoded = None
            if abs(value - round(value)) < 1e-6:
                decoded = compiler.encoder.decode(int(round(value)))
            witness[plain] = decoded if decoded is not None else value
    return witness
