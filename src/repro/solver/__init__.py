"""Constraint-solving substrate.

Replaces the paper's CPLEX dependency: condition formulas are compiled to
MILPs with the Figure-13 rules (:mod:`repro.solver.compiler`) and solved
for feasibility with branch and bound over scipy LP relaxations
(:mod:`repro.solver.branch_bound`).  :mod:`repro.solver.sat` is the
high-level entry point used by program slicing, and
:mod:`repro.solver.bruteforce` cross-validates the whole pipeline in tests.
"""

from .branch_bound import Feasibility, SolveResult, is_feasible, solve
from .bruteforce import enumerate_satisfying, is_satisfiable_bruteforce
from .intervals import IntervalOutcome, interval_presolve
from .compiler import (
    AffineForm,
    FormulaCompiler,
    StringEncoder,
    UnsupportedExpression,
    compile_formula,
)
from .milp import LinearConstraint, MILPModel, ModelError, Variable
from .sat import SatResult, SolverConfig, check_satisfiable

__all__ = [
    "MILPModel", "Variable", "LinearConstraint", "ModelError",
    "FormulaCompiler", "AffineForm", "StringEncoder",
    "UnsupportedExpression", "compile_formula",
    "Feasibility", "SolveResult", "solve", "is_feasible",
    "SatResult", "SolverConfig", "check_satisfiable",
    "enumerate_satisfying", "is_satisfiable_bruteforce",
    "IntervalOutcome", "interval_presolve",
]
