"""Brute-force finite-domain satisfiability checker.

Used in tests to cross-validate the MILP pipeline: a formula is satisfiable
over given finite domains iff some assignment evaluates it to true.  This
is exponential and only suitable for the small domains used in property
tests — which is exactly its purpose.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping, Sequence

from ..relational.expressions import (
    Expr,
    evaluate,
    variables_of,
    attributes_of,
)

__all__ = ["enumerate_satisfying", "is_satisfiable_bruteforce"]


def enumerate_satisfying(
    formula: Expr,
    domains: Mapping[str, Sequence[Any]],
    limit: int | None = None,
):
    """Yield assignments (name -> value) under which ``formula`` is true.

    ``domains`` must cover every :class:`Var` and :class:`Attr` referenced
    by the formula; a missing name raises ``KeyError`` eagerly.
    """
    names = sorted(variables_of(formula) | attributes_of(formula))
    for name in names:
        if name not in domains:
            raise KeyError(f"no domain given for {name!r}")
    count = 0
    spaces = [domains[name] for name in names]
    for values in itertools.product(*spaces):
        binding = dict(zip(names, values))
        if bool(evaluate(formula, binding)):
            yield binding
            count += 1
            if limit is not None and count >= limit:
                return


def is_satisfiable_bruteforce(
    formula: Expr, domains: Mapping[str, Sequence[Any]]
) -> bool:
    """True iff some assignment from the finite domains satisfies the
    formula."""
    for _ in enumerate_satisfying(formula, domains, limit=1):
        return True
    return False
